package core

import (
	"encoding/json"
	"fmt"
)

// descriptorJSON is the serialised application-descriptor format used by the
// command-line tools. It mirrors the contract artefacts of Section 3: the
// graph, the per-edge concise attributes, and the input-rate distribution.
type descriptorJSON struct {
	Name          string          `json:"name"`
	Components    []componentJSON `json:"components"`
	Edges         []edgeJSON      `json:"edges"`
	Configs       []configJSON    `json:"configs"`
	HostCapacity  float64         `json:"host_capacity"`
	BillingPeriod float64         `json:"billing_period"`
}

type componentJSON struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

type edgeJSON struct {
	From        int     `json:"from"`
	To          int     `json:"to"`
	Selectivity float64 `json:"selectivity,omitempty"`
	CostCycles  float64 `json:"cost_cycles,omitempty"`
}

type configJSON struct {
	Name  string    `json:"name"`
	Rates []float64 `json:"rates"`
	Prob  float64   `json:"prob"`
}

// MarshalDescriptor serialises a descriptor to JSON.
func MarshalDescriptor(d *Descriptor) ([]byte, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	raw := descriptorJSON{
		Name:          d.App.Name(),
		HostCapacity:  d.HostCapacity,
		BillingPeriod: d.BillingPeriod,
	}
	for _, c := range d.App.Components() {
		raw.Components = append(raw.Components, componentJSON{Name: c.Name, Kind: c.Kind.String()})
	}
	for _, e := range d.App.Edges() {
		raw.Edges = append(raw.Edges, edgeJSON{
			From: int(e.From), To: int(e.To),
			Selectivity: e.Selectivity, CostCycles: e.CostCycles,
		})
	}
	for _, c := range d.Configs {
		raw.Configs = append(raw.Configs, configJSON{Name: c.Name, Rates: c.Rates, Prob: c.Prob})
	}
	return json.MarshalIndent(raw, "", "  ")
}

// UnmarshalDescriptor parses a descriptor from JSON and validates it.
func UnmarshalDescriptor(data []byte) (*Descriptor, error) {
	var raw descriptorJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("core: parsing descriptor: %w", err)
	}
	b := NewBuilder(raw.Name)
	for _, c := range raw.Components {
		switch c.Kind {
		case "source":
			b.AddSource(c.Name)
		case "pe":
			b.AddPE(c.Name)
		case "sink":
			b.AddSink(c.Name)
		default:
			return nil, fmt.Errorf("core: unknown component kind %q", c.Kind)
		}
	}
	for _, e := range raw.Edges {
		b.Connect(ComponentID(e.From), ComponentID(e.To), e.Selectivity, e.CostCycles)
	}
	app, err := b.Build()
	if err != nil {
		return nil, err
	}
	d := &Descriptor{
		App:           app,
		HostCapacity:  raw.HostCapacity,
		BillingPeriod: raw.BillingPeriod,
	}
	for _, c := range raw.Configs {
		d.Configs = append(d.Configs, InputConfig{Name: c.Name, Rates: c.Rates, Prob: c.Prob})
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// Package core implements the LAAR application model: data-flow graphs of
// sources, processing elements (PEs) and sinks, application descriptors with
// per-edge selectivity and per-tuple CPU cost, discrete input configurations
// with a probability mass function, replica activation strategies, and the
// internal-completeness (IC), cost and host-load mathematics of the paper
// (Bellavista et al., EDBT 2014, Sections 3 and 4).
package core

import (
	"errors"
	"fmt"
)

// Kind discriminates the three component roles of an application graph.
type Kind int

const (
	// KindSource produces tuples from the external world at one of a
	// finite set of rates.
	KindSource Kind = iota
	// KindPE transforms input streams into an output stream.
	KindPE
	// KindSink consumes tuples and delivers them externally.
	KindSink
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindSource:
		return "source"
	case KindPE:
		return "pe"
	case KindSink:
		return "sink"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ComponentID identifies a component within its App. IDs are dense indices
// assigned in insertion order, usable to index App-wide slices.
type ComponentID int

// Component is a vertex of the application graph.
type Component struct {
	ID   ComponentID
	Name string
	Kind Kind
}

// Edge is a directed stream connection between two components, annotated
// with the destination PE's selectivity and per-tuple CPU cost with respect
// to this input (the δ and γ functions of the paper).
type Edge struct {
	From ComponentID
	To   ComponentID
	// Selectivity is the number of output tuples the destination produces
	// per input tuple received on this edge (δ).
	Selectivity float64
	// CostCycles is the CPU cycles needed by the destination to process
	// one tuple arriving on this edge (γ).
	CostCycles float64
}

// App is an immutable application graph: a DAG of sources, PEs and sinks.
// Build one with a Builder.
type App struct {
	name       string
	components []Component
	edges      []Edge
	preds      [][]int  // indices into edges, grouped by destination
	succs      [][]int  // indices into edges, grouped by origin
	inEdges    [][]Edge // edges grouped by destination, shared by In()
	outEdges   [][]Edge // edges grouped by origin, shared by Out()
	sources    []ComponentID
	pes        []ComponentID
	sinks      []ComponentID
	peIndex    []int // componentID -> dense PE index, -1 for non-PEs
	srcIndex   []int // componentID -> dense source index, -1 otherwise
	topo       []ComponentID
}

// Builder incrementally constructs an App. The zero value is not usable;
// create one with NewBuilder.
type Builder struct {
	name       string
	components []Component
	edges      []Edge
	err        error
}

// NewBuilder returns a Builder for an application with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name}
}

func (b *Builder) add(name string, kind Kind) ComponentID {
	id := ComponentID(len(b.components))
	if name == "" {
		name = fmt.Sprintf("%s%d", kind, id)
	}
	b.components = append(b.components, Component{ID: id, Name: name, Kind: kind})
	return id
}

// AddSource adds a data source and returns its ID.
func (b *Builder) AddSource(name string) ComponentID { return b.add(name, KindSource) }

// AddPE adds a processing element and returns its ID.
func (b *Builder) AddPE(name string) ComponentID { return b.add(name, KindPE) }

// AddSink adds a data sink and returns its ID.
func (b *Builder) AddSink(name string) ComponentID { return b.add(name, KindSink) }

// Connect adds a stream from one component to another. Selectivity and
// per-tuple cost describe the destination PE's behaviour on this input; for
// edges into sinks both values are ignored and may be zero.
func (b *Builder) Connect(from, to ComponentID, selectivity, costCycles float64) *Builder {
	if b.err != nil {
		return b
	}
	switch {
	case int(from) >= len(b.components) || from < 0:
		b.err = fmt.Errorf("core: connect: unknown origin component %d", from)
	case int(to) >= len(b.components) || to < 0:
		b.err = fmt.Errorf("core: connect: unknown destination component %d", to)
	case b.components[from].Kind == KindSink:
		b.err = fmt.Errorf("core: connect: sink %q cannot have outgoing edges", b.components[from].Name)
	case b.components[to].Kind == KindSource:
		b.err = fmt.Errorf("core: connect: source %q cannot have incoming edges", b.components[to].Name)
	case b.components[to].Kind == KindPE && selectivity < 0:
		b.err = fmt.Errorf("core: connect: negative selectivity %v into %q", selectivity, b.components[to].Name)
	case b.components[to].Kind == KindPE && costCycles < 0:
		b.err = fmt.Errorf("core: connect: negative cost %v into %q", costCycles, b.components[to].Name)
	default:
		b.edges = append(b.edges, Edge{From: from, To: to, Selectivity: selectivity, CostCycles: costCycles})
	}
	return b
}

// Build validates the graph and returns the immutable App. The graph must be
// a DAG with at least one source, one PE and one sink; every PE must have at
// least one predecessor and at least one successor, sources must have at
// least one outgoing edge and sinks at least one incoming edge, and duplicate
// edges are rejected.
func (b *Builder) Build() (*App, error) {
	if b.err != nil {
		return nil, b.err
	}
	a := &App{
		name:       b.name,
		components: append([]Component(nil), b.components...),
		edges:      append([]Edge(nil), b.edges...),
	}
	n := len(a.components)
	a.preds = make([][]int, n)
	a.succs = make([][]int, n)
	seen := make(map[[2]ComponentID]bool, len(a.edges))
	for i, e := range a.edges {
		key := [2]ComponentID{e.From, e.To}
		if seen[key] {
			return nil, fmt.Errorf("core: duplicate edge %s -> %s",
				a.components[e.From].Name, a.components[e.To].Name)
		}
		seen[key] = true
		a.preds[e.To] = append(a.preds[e.To], i)
		a.succs[e.From] = append(a.succs[e.From], i)
	}
	a.peIndex = make([]int, n)
	a.srcIndex = make([]int, n)
	for i := range a.peIndex {
		a.peIndex[i] = -1
		a.srcIndex[i] = -1
	}
	for _, c := range a.components {
		switch c.Kind {
		case KindSource:
			a.srcIndex[c.ID] = len(a.sources)
			a.sources = append(a.sources, c.ID)
			if len(a.succs[c.ID]) == 0 {
				return nil, fmt.Errorf("core: source %q has no outgoing edges", c.Name)
			}
		case KindPE:
			a.peIndex[c.ID] = len(a.pes)
			a.pes = append(a.pes, c.ID)
			if len(a.preds[c.ID]) == 0 {
				return nil, fmt.Errorf("core: PE %q has no incoming edges", c.Name)
			}
			if len(a.succs[c.ID]) == 0 {
				return nil, fmt.Errorf("core: PE %q has no outgoing edges", c.Name)
			}
		case KindSink:
			a.sinks = append(a.sinks, c.ID)
			if len(a.preds[c.ID]) == 0 {
				return nil, fmt.Errorf("core: sink %q has no incoming edges", c.Name)
			}
		}
	}
	if len(a.sources) == 0 {
		return nil, errors.New("core: application has no sources")
	}
	if len(a.pes) == 0 {
		return nil, errors.New("core: application has no PEs")
	}
	if len(a.sinks) == 0 {
		return nil, errors.New("core: application has no sinks")
	}
	topo, err := a.topoSort()
	if err != nil {
		return nil, err
	}
	a.topo = topo
	a.groupEdges()
	return a, nil
}

// groupEdges precomputes the per-component incoming and outgoing edge
// slices returned by In and Out, carved out of two flat arenas so the
// accessors are allocation-free on the search and instance-build hot paths.
func (a *App) groupEdges() {
	n := len(a.components)
	a.inEdges = make([][]Edge, n)
	a.outEdges = make([][]Edge, n)
	inFlat := make([]Edge, 0, len(a.edges))
	outFlat := make([]Edge, 0, len(a.edges))
	for id := 0; id < n; id++ {
		start := len(inFlat)
		for _, ei := range a.preds[id] {
			inFlat = append(inFlat, a.edges[ei])
		}
		a.inEdges[id] = inFlat[start:len(inFlat):len(inFlat)]
		start = len(outFlat)
		for _, ei := range a.succs[id] {
			outFlat = append(outFlat, a.edges[ei])
		}
		a.outEdges[id] = outFlat[start:len(outFlat):len(outFlat)]
	}
}

// topoSort returns the components in a topological order (Kahn's algorithm),
// or an error if the graph contains a cycle.
func (a *App) topoSort() ([]ComponentID, error) {
	n := len(a.components)
	indeg := make([]int, n)
	for i := range a.components {
		indeg[i] = len(a.preds[i])
	}
	queue := make([]ComponentID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, ComponentID(i))
		}
	}
	order := make([]ComponentID, 0, n)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, ei := range a.succs[id] {
			to := a.edges[ei].To
			indeg[to]--
			if indeg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	if len(order) != n {
		return nil, errors.New("core: application graph contains a cycle")
	}
	return order, nil
}

// Name returns the application name.
func (a *App) Name() string { return a.name }

// NumComponents returns the total number of graph vertices.
func (a *App) NumComponents() int { return len(a.components) }

// Component returns the component with the given ID.
func (a *App) Component(id ComponentID) Component { return a.components[id] }

// Components returns all components in insertion order. The returned slice
// must not be modified.
func (a *App) Components() []Component { return a.components }

// Edges returns all edges. The returned slice must not be modified.
func (a *App) Edges() []Edge { return a.edges }

// Sources returns the IDs of all data sources, in insertion order.
func (a *App) Sources() []ComponentID { return a.sources }

// PEs returns the IDs of all processing elements, in insertion order.
func (a *App) PEs() []ComponentID { return a.pes }

// Sinks returns the IDs of all data sinks, in insertion order.
func (a *App) Sinks() []ComponentID { return a.sinks }

// NumPEs returns the number of processing elements.
func (a *App) NumPEs() int { return len(a.pes) }

// NumSources returns the number of data sources.
func (a *App) NumSources() int { return len(a.sources) }

// PEIndex returns the dense PE index (0..NumPEs-1) of the component, or -1
// if the component is not a PE.
func (a *App) PEIndex(id ComponentID) int { return a.peIndex[id] }

// SourceIndex returns the dense source index of the component, or -1 if the
// component is not a source.
func (a *App) SourceIndex(id ComponentID) int { return a.srcIndex[id] }

// In returns the edges entering the component. The slice must not be modified.
func (a *App) In(id ComponentID) []Edge { return a.inEdges[id] }

// Out returns the edges leaving the component. The slice must not be modified.
func (a *App) Out(id ComponentID) []Edge { return a.outEdges[id] }

// Preds returns the IDs of the predecessor components of id (the pred
// function of the paper, Eq. 1).
func (a *App) Preds(id ComponentID) []ComponentID {
	out := make([]ComponentID, len(a.preds[id]))
	for i, ei := range a.preds[id] {
		out[i] = a.edges[ei].From
	}
	return out
}

// Succs returns the IDs of the successor components of id.
func (a *App) Succs(id ComponentID) []ComponentID {
	out := make([]ComponentID, len(a.succs[id]))
	for i, ei := range a.succs[id] {
		out[i] = a.edges[ei].To
	}
	return out
}

// Topo returns the components in a topological order. The returned slice
// must not be modified.
func (a *App) Topo() []ComponentID { return a.topo }

// TopoPEs returns the dense PE indices in topological order.
func (a *App) TopoPEs() []int {
	out := make([]int, 0, len(a.pes))
	for _, id := range a.topo {
		if pi := a.peIndex[id]; pi >= 0 {
			out = append(out, pi)
		}
	}
	return out
}

package core

import (
	"encoding/json"
	"fmt"
)

// DefaultReplication is the replication factor used throughout the paper's
// evaluation (twofold replication, k = 2).
const DefaultReplication = 2

// Strategy is a replica activation strategy s: P̃ × C → {0, 1} (Eq. 4). It
// records, for every input configuration and every PE replica, whether the
// replica is active.
type Strategy struct {
	// K is the replication factor (replicas per PE).
	K int
	// Active[cfg][peIdx][replica] reports whether the replica is active in
	// the configuration.
	Active [][][]bool
}

// NewStrategy returns a strategy with numPEs·k replica slots per
// configuration, all inactive.
func NewStrategy(numConfigs, numPEs, k int) *Strategy {
	s := &Strategy{K: k, Active: make([][][]bool, numConfigs)}
	for c := range s.Active {
		s.Active[c] = make([][]bool, numPEs)
		for p := range s.Active[c] {
			s.Active[c][p] = make([]bool, k)
		}
	}
	return s
}

// AllActive returns the static active replication strategy: every replica
// active in every configuration.
func AllActive(numConfigs, numPEs, k int) *Strategy {
	s := NewStrategy(numConfigs, numPEs, k)
	for c := range s.Active {
		for p := range s.Active[c] {
			for r := range s.Active[c][p] {
				s.Active[c][p][r] = true
			}
		}
	}
	return s
}

// Clone returns a deep copy of the strategy.
func (s *Strategy) Clone() *Strategy {
	out := NewStrategy(len(s.Active), len(s.Active[0]), s.K)
	for c := range s.Active {
		for p := range s.Active[c] {
			copy(out.Active[c][p], s.Active[c][p])
		}
	}
	return out
}

// NumConfigs returns the number of configurations the strategy covers.
func (s *Strategy) NumConfigs() int { return len(s.Active) }

// NumPEs returns the number of PEs the strategy covers.
func (s *Strategy) NumPEs() int {
	if len(s.Active) == 0 {
		return 0
	}
	return len(s.Active[0])
}

// NumActive returns how many replicas of the PE are active in the
// configuration.
func (s *Strategy) NumActive(cfg, peIdx int) int {
	n := 0
	for _, a := range s.Active[cfg][peIdx] {
		if a {
			n++
		}
	}
	return n
}

// IsActive reports whether the given replica of the PE is active in the
// configuration.
func (s *Strategy) IsActive(cfg, peIdx, replica int) bool {
	return s.Active[cfg][peIdx][replica]
}

// Set assigns the activation state of one replica in one configuration.
func (s *Strategy) Set(cfg, peIdx, replica int, active bool) {
	s.Active[cfg][peIdx][replica] = active
}

// TotalActive returns the total number of active replica-configuration
// pairs, a crude size measure used in tests and reports.
func (s *Strategy) TotalActive() int {
	n := 0
	for c := range s.Active {
		for p := range s.Active[c] {
			n += s.NumActive(c, p)
		}
	}
	return n
}

// Validate checks the liveness constraint of Eq. 12: at least one replica of
// every PE is active in every configuration.
func (s *Strategy) Validate() error {
	for c := range s.Active {
		for p := range s.Active[c] {
			if s.NumActive(c, p) == 0 {
				return fmt.Errorf("core: strategy leaves PE %d with no active replica in config %d", p, c)
			}
		}
	}
	return nil
}

// strategyJSON is the on-disk representation consumed by the HAController
// (the paper customises the controller with a JSON strategy file).
type strategyJSON struct {
	K      int        `json:"replication"`
	Active [][][]bool `json:"active"`
}

// MarshalJSON encodes the strategy in the HAController file format.
func (s *Strategy) MarshalJSON() ([]byte, error) {
	return json.Marshal(strategyJSON{K: s.K, Active: s.Active})
}

// UnmarshalJSON decodes the HAController file format.
func (s *Strategy) UnmarshalJSON(data []byte) error {
	var raw strategyJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if raw.K <= 0 {
		return fmt.Errorf("core: strategy with non-positive replication %d", raw.K)
	}
	for c := range raw.Active {
		for p := range raw.Active[c] {
			if len(raw.Active[c][p]) != raw.K {
				return fmt.Errorf("core: strategy config %d PE %d has %d replicas, want %d",
					c, p, len(raw.Active[c][p]), raw.K)
			}
		}
	}
	s.K = raw.K
	s.Active = raw.Active
	return nil
}

package core

import (
	"testing"
	"testing/quick"
)

// pipelineAssignment mirrors Fig. 2a: two hosts, replica r of each PE on
// host r.
func pipelineAssignment() *Assignment {
	asg := NewAssignment(2, 2, 2)
	for p := 0; p < 2; p++ {
		for r := 0; r < 2; r++ {
			asg.Host[p][r] = r
		}
	}
	return asg
}

func TestCostPipelineStatic(t *testing.T) {
	_, d := buildPipeline(t)
	r := NewRates(d)
	s := AllActive(2, 2, 2)
	// cost = T·Σ_c P(c)·Σ_pe unitLoad·2
	//      = 300·(0.8·(4e8+4e8)·2·... ) per PE both replicas:
	// Low: (4e8+4e8)·2 = 1.6e9; High: (8e8+8e8)·2 = 3.2e9.
	// cost = 300·(0.8·1.6e9 + 0.2·3.2e9) = 300·1.92e9 = 5.76e11.
	if got := Cost(r, s); !almostEqual(got, 5.76e11) {
		t.Fatalf("Cost = %v, want 5.76e11", got)
	}
}

func TestCostLAARCheaperThanStatic(t *testing.T) {
	_, d := buildPipeline(t)
	r := NewRates(d)
	static := AllActive(2, 2, 2)
	laar := laarPipelineStrategy()
	if Cost(r, laar) >= Cost(r, static) {
		t.Fatalf("Cost(laar)=%v not below Cost(static)=%v", Cost(r, laar), Cost(r, static))
	}
}

func TestHostLoadPipeline(t *testing.T) {
	_, d := buildPipeline(t)
	r := NewRates(d)
	asg := pipelineAssignment()
	s := AllActive(2, 2, 2)
	// All replicas active, High: each host runs one replica of each PE,
	// load = 8e8 + 8e8 = 1.6e9 > K = 1e9 → overloaded.
	if got := HostLoad(r, s, asg, 0, 1); !almostEqual(got, 1.6e9) {
		t.Fatalf("HostLoad(host0, High) = %v, want 1.6e9", got)
	}
	if _, _, over := Overloaded(r, s, asg); !over {
		t.Fatal("static replication at High should be overloaded")
	}
	// LAAR strategy deactivates PE1 replica 1 (host 1) and PE2 replica 0
	// (host 0) at High: each host load = 8e8 < K.
	laar := laarPipelineStrategy()
	if got := HostLoad(r, laar, asg, 0, 1); !almostEqual(got, 8e8) {
		t.Fatalf("HostLoad(host0, High, laar) = %v, want 8e8", got)
	}
	if h, c, over := Overloaded(r, laar, asg); over {
		t.Fatalf("LAAR strategy overloaded at host %d config %d", h, c)
	}
}

func TestHostLoadsSumMatchesPerHostQueries(t *testing.T) {
	_, d := buildDiamond(t)
	r := NewRates(d)
	asg := NewAssignment(4, 2, 3)
	for p := 0; p < 4; p++ {
		asg.Host[p][0] = p % 3
		asg.Host[p][1] = (p + 1) % 3
	}
	s := AllActive(2, 4, 2)
	for c := 0; c < 2; c++ {
		loads := HostLoads(r, s, asg, c)
		for h := range loads {
			if got := HostLoad(r, s, asg, h, c); !almostEqual(got, loads[h]) {
				t.Errorf("cfg %d host %d: HostLoad=%v, HostLoads=%v", c, h, got, loads[h])
			}
		}
	}
}

func TestCostMonotoneInActivationQuick(t *testing.T) {
	_, d := buildDiamond(t)
	r := NewRates(d)
	f := func(bits uint16, cfg, pe uint8) bool {
		s := NewStrategy(2, 4, 2)
		i := 0
		for c := 0; c < 2; c++ {
			for p := 0; p < 4; p++ {
				s.Set(c, p, 0, true)
				s.Set(c, p, 1, bits&(1<<i) != 0)
				i++
			}
		}
		c, p := int(cfg)%2, int(pe)%4
		if s.IsActive(c, p, 1) {
			return true
		}
		s2 := s.Clone()
		s2.Set(c, p, 1, true)
		return Cost(r, s2) >= Cost(r, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAssignmentValidate(t *testing.T) {
	asg := NewAssignment(2, 2, 2)
	asg.Host[0][0], asg.Host[0][1] = 0, 1
	asg.Host[1][0], asg.Host[1][1] = 1, 0
	if err := asg.Validate(true); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	asg.Host[1][1] = 1 // both replicas of PE 1 on host 1
	if err := asg.Validate(true); err == nil {
		t.Fatal("Validate(antiAffinity) accepted co-located replicas")
	}
	if err := asg.Validate(false); err != nil {
		t.Fatalf("Validate(false): %v", err)
	}
	asg.Host[0][0] = 7
	if err := asg.Validate(false); err == nil {
		t.Fatal("Validate accepted out-of-range host")
	}
}

func TestReplicasOn(t *testing.T) {
	asg := pipelineAssignment()
	on0 := asg.ReplicasOn(0)
	if len(on0) != 2 {
		t.Fatalf("ReplicasOn(0) = %v, want 2 replicas", on0)
	}
	for _, pr := range on0 {
		if pr[1] != 0 {
			t.Errorf("host 0 hosts replica %v, want replica index 0", pr)
		}
	}
}

package core

import (
	"strings"
	"testing"
)

func TestDescriptorValidateErrors(t *testing.T) {
	app, good := buildPipeline(t)
	cases := []struct {
		name   string
		mutate func(d *Descriptor)
		want   string
	}{
		{"no app", func(d *Descriptor) { d.App = nil }, "no application"},
		{"no configs", func(d *Descriptor) { d.Configs = nil }, "no input configurations"},
		{"bad capacity", func(d *Descriptor) { d.HostCapacity = 0 }, "capacity"},
		{"bad period", func(d *Descriptor) { d.BillingPeriod = -1 }, "billing period"},
		{"rate arity", func(d *Descriptor) { d.Configs[0].Rates = []float64{1, 2} }, "rates"},
		{"negative rate", func(d *Descriptor) { d.Configs[0].Rates = []float64{-3} }, "invalid rate"},
		{"bad prob", func(d *Descriptor) { d.Configs[0].Prob = 1.5 }, "invalid probability"},
		{"prob sum", func(d *Descriptor) { d.Configs[0].Prob = 0.5 }, "sum"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := &Descriptor{
				App:           app,
				Configs:       []InputConfig{{Name: "Low", Rates: []float64{4}, Prob: 0.8}, {Name: "High", Rates: []float64{8}, Prob: 0.2}},
				HostCapacity:  good.HostCapacity,
				BillingPeriod: good.BillingPeriod,
			}
			tc.mutate(d)
			err := d.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestConfigByName(t *testing.T) {
	_, d := buildPipeline(t)
	if got := d.ConfigByName("High"); got != 1 {
		t.Errorf("ConfigByName(High) = %d, want 1", got)
	}
	if got := d.ConfigByName("absent"); got != -1 {
		t.Errorf("ConfigByName(absent) = %d, want -1", got)
	}
}

func TestCrossConfigs(t *testing.T) {
	rates := [][]float64{{1, 2}, {10, 20, 30}}
	probs := [][]float64{{0.4, 0.6}, {0.2, 0.3, 0.5}}
	cfgs, err := CrossConfigs(rates, probs)
	if err != nil {
		t.Fatalf("CrossConfigs: %v", err)
	}
	if len(cfgs) != 6 {
		t.Fatalf("got %d configs, want 6", len(cfgs))
	}
	var sum float64
	for _, c := range cfgs {
		sum += c.Prob
		if len(c.Rates) != 2 {
			t.Fatalf("config %s has %d rates", c.Name, len(c.Rates))
		}
	}
	if !almostEqual(sum, 1) {
		t.Fatalf("probabilities sum to %v", sum)
	}
	// First config is (1, 10) with prob 0.4·0.2 = 0.08.
	if cfgs[0].Rates[0] != 1 || cfgs[0].Rates[1] != 10 || !almostEqual(cfgs[0].Prob, 0.08) {
		t.Errorf("first config = %+v", cfgs[0])
	}
	// Last config is (2, 30) with prob 0.6·0.5 = 0.3.
	last := cfgs[len(cfgs)-1]
	if last.Rates[0] != 2 || last.Rates[1] != 30 || !almostEqual(last.Prob, 0.3) {
		t.Errorf("last config = %+v", last)
	}
}

func TestCrossConfigsErrors(t *testing.T) {
	if _, err := CrossConfigs([][]float64{{1}}, [][]float64{}); err == nil {
		t.Error("mismatched list counts accepted")
	}
	if _, err := CrossConfigs([][]float64{{}}, [][]float64{{}}); err == nil {
		t.Error("empty rate list accepted")
	}
	if _, err := CrossConfigs([][]float64{{1, 2}}, [][]float64{{1}}); err == nil {
		t.Error("mismatched rate/prob lengths accepted")
	}
}

func TestSourceRatePanicsOnNonSource(t *testing.T) {
	app, d := buildPipeline(t)
	defer func() {
		if recover() == nil {
			t.Fatal("SourceRate did not panic for a PE")
		}
	}()
	d.SourceRate(app.PEs()[0], 0)
}

func TestConfigsByLoadDesc(t *testing.T) {
	_, d := buildPipeline(t)
	r := NewRates(d)
	order := r.ConfigsByLoadDesc()
	if len(order) != 2 || order[0] != 1 || order[1] != 0 {
		t.Fatalf("ConfigsByLoadDesc = %v, want [1 0] (High first)", order)
	}
	if got := r.MaxConfig(); got != 1 {
		t.Fatalf("MaxConfig = %d, want 1", got)
	}
}

package core

// BIC returns the best-case internal completeness (Eq. 5): the number of
// tuples statistically expected to be processed by all application PEs
// during one billing period T in absence of failures.
func BIC(r *Rates) float64 {
	d := r.Descriptor()
	var sum float64
	for c, cfg := range d.Configs {
		var per float64
		for p := range d.App.PEs() {
			per += r.InRate(p, c)
		}
		sum += cfg.Prob * per
	}
	return d.BillingPeriod * sum
}

// FIC returns the failure internal completeness (Eq. 6): the expected number
// of tuples processed during T given failure model φ and activation
// strategy s. The expected output Δ̂ of each PE (Eq. 7) is computed
// recursively along the topological order.
func FIC(r *Rates, s *Strategy, model FailureModel) float64 {
	d := r.Descriptor()
	app := d.App
	var sum float64
	hat := make([]float64, app.NumComponents())
	for c, cfg := range d.Configs {
		if cfg.Prob == 0 {
			continue
		}
		// Δ̂ for this configuration.
		for _, id := range app.Topo() {
			switch app.Component(id).Kind {
			case KindSource:
				hat[id] = d.SourceRate(id, c)
			case KindPE:
				var in float64
				for _, e := range app.In(id) {
					in += e.Selectivity * hat[e.From]
				}
				hat[id] = model.Phi(s, c, app.PEIndex(id)) * in
			case KindSink:
				hat[id] = 0
			}
		}
		var per float64
		for _, id := range app.PEs() {
			phi := model.Phi(s, c, app.PEIndex(id))
			if phi == 0 {
				continue
			}
			var in float64
			for _, e := range app.In(id) {
				in += hat[e.From]
			}
			per += phi * in
		}
		sum += cfg.Prob * per
	}
	return d.BillingPeriod * sum
}

// ConfigPatternIC returns the internal completeness of one input
// configuration under an explicit activation pattern (active[pe][k] =
// replica k of PE pe running) and the pessimistic failure model: the
// per-configuration FIC over the per-configuration BIC, with Φ = 1 exactly
// for fully-replicated PEs. Unlike FIC it needs no Strategy, which is what
// lets the migration checkers evaluate the transient union patterns a live
// reconfiguration moves through. Returns 1 when the configuration carries
// no input. The pattern's Φ is monotone in the activation bits and every
// selectivity is non-negative, so the result is monotone in the pattern —
// the invariant behind the ic-floor-during-migration check.
func ConfigPatternIC(r *Rates, cfg int, active [][]bool) float64 {
	d := r.Descriptor()
	app := d.App
	phiOf := func(pe int) float64 {
		row := active[pe]
		for _, a := range row {
			if !a {
				return 0
			}
		}
		return 1
	}
	hat := make([]float64, app.NumComponents())
	var fic, bic float64
	for _, id := range app.Topo() {
		switch app.Component(id).Kind {
		case KindSource:
			hat[id] = d.SourceRate(id, cfg)
		case KindPE:
			pe := app.PEIndex(id)
			bic += r.InRate(pe, cfg)
			phi := phiOf(pe)
			var in float64
			for _, e := range app.In(id) {
				in += e.Selectivity * hat[e.From]
			}
			if phi > 0 {
				var raw float64
				for _, e := range app.In(id) {
					raw += hat[e.From]
				}
				fic += phi * raw
			}
			hat[id] = phi * in
		case KindSink:
			hat[id] = 0
		}
	}
	if bic == 0 {
		return 1
	}
	return fic / bic
}

// IC returns the internal completeness metric (Eq. 8): FIC(s)/BIC, the
// fraction of the failure-free tuple-processing volume that survives under
// the failure model. Returns 1 when BIC is zero (an application with no
// input processes everything there is to process).
func IC(r *Rates, s *Strategy, model FailureModel) float64 {
	b := BIC(r)
	if b == 0 {
		return 1
	}
	return FIC(r, s, model) / b
}

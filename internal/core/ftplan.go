package core

import (
	"encoding/json"
	"fmt"
)

// FTMode is the fault-tolerance mechanism chosen for one (configuration, PE)
// pair. The paper's decision space is {R0, R1, BOTH} — which replica(s) of
// an active pair to keep hot; FTMode widens it with the passive alternative
// the related work contrasts active replication against (Khaos, PAPERS.md):
// a single active replica that periodically checkpoints its state and
// replays from the last checkpoint after a crash.
type FTMode int8

const (
	// FTActive keeps every replica of the PE active (active replication:
	// instant failover, double cost).
	FTActive FTMode = iota
	// FTNone runs a single active replica with no passive protection: a
	// crash loses the operator until an external recovery.
	FTNone
	// FTCheckpoint runs a single active replica that checkpoints
	// periodically and restores from the last checkpoint after a crash,
	// replaying the lost window (bounded recovery time, small steady-state
	// overhead).
	FTCheckpoint
)

var ftModeNames = [...]string{"active", "none", "checkpoint"}

// String names a mode for reports.
func (m FTMode) String() string {
	if m >= 0 && int(m) < len(ftModeNames) {
		return ftModeNames[m]
	}
	return fmt.Sprintf("ftmode(%d)", int(m))
}

// FTPlan records the per-(configuration, PE) fault-tolerance mechanism a
// solver chose alongside the activation strategy. It is the passive-FT
// companion of Strategy: the strategy says which replicas are active, the
// plan says what protects the PEs that run singly.
type FTPlan struct {
	// Mode[cfg][peIdx] is the mechanism for the PE in that configuration.
	Mode [][]FTMode
}

// NewFTPlan returns a plan with every (configuration, PE) at FTActive.
func NewFTPlan(numConfigs, numPEs int) *FTPlan {
	p := &FTPlan{Mode: make([][]FTMode, numConfigs)}
	for c := range p.Mode {
		p.Mode[c] = make([]FTMode, numPEs)
	}
	return p
}

// NumConfigs returns the number of input configurations the plan covers.
func (p *FTPlan) NumConfigs() int { return len(p.Mode) }

// NumPEs returns the number of PEs the plan covers.
func (p *FTPlan) NumPEs() int {
	if len(p.Mode) == 0 {
		return 0
	}
	return len(p.Mode[0])
}

// CheckpointPEs flattens the plan to the per-PE view the runtimes need: a
// PE is checkpointed iff the plan picks FTCheckpoint for it in at least one
// configuration (the checkpointing machinery runs continuously; which
// configurations *credit* it is the solver's concern).
func (p *FTPlan) CheckpointPEs() []bool {
	out := make([]bool, p.NumPEs())
	for _, row := range p.Mode {
		for pe, m := range row {
			if m == FTCheckpoint {
				out[pe] = true
			}
		}
	}
	return out
}

// Counts tallies the plan's modes over all (configuration, PE) pairs.
func (p *FTPlan) Counts() (active, none, checkpoint int) {
	for _, row := range p.Mode {
		for _, m := range row {
			switch m {
			case FTActive:
				active++
			case FTNone:
				none++
			case FTCheckpoint:
				checkpoint++
			}
		}
	}
	return
}

type ftPlanJSON struct {
	Mode [][]string `json:"mode"`
}

// MarshalJSON encodes the plan with symbolic mode names.
func (p *FTPlan) MarshalJSON() ([]byte, error) {
	out := ftPlanJSON{Mode: make([][]string, len(p.Mode))}
	for c, row := range p.Mode {
		out.Mode[c] = make([]string, len(row))
		for pe, m := range row {
			out.Mode[c][pe] = m.String()
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes a plan written by MarshalJSON.
func (p *FTPlan) UnmarshalJSON(data []byte) error {
	var in ftPlanJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	p.Mode = make([][]FTMode, len(in.Mode))
	for c, row := range in.Mode {
		p.Mode[c] = make([]FTMode, len(row))
		for pe, name := range row {
			found := false
			for m, n := range ftModeNames {
				if n == name {
					p.Mode[c][pe] = FTMode(m)
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("core: unknown FT mode %q", name)
			}
		}
	}
	return nil
}

// CheckpointPhi is the closed-form availability credited to a checkpointed
// operator: over a mean time between failures mtbf, the operator is dark for
// restoreDelay (detection + restore) plus half a checkpoint interval of
// replay on average per failure, so
//
//	φ ≈ 1 − (restoreDelay + interval/2) / mtbf
//
// clamped to [0, 1]. It is the knob that turns Khaos's checkpoint-interval
// vs recovery-time tradeoff into a number FT-Search can weigh against an
// active replica's φ = 1.
func CheckpointPhi(mtbf, restoreDelay, interval float64) float64 {
	if mtbf <= 0 {
		return 0
	}
	phi := 1 - (restoreDelay+interval/2)/mtbf
	if phi < 0 {
		return 0
	}
	if phi > 1 {
		return 1
	}
	return phi
}

// CheckpointAware wraps a base failure model with an FT plan: pairs the plan
// protects with FTCheckpoint are credited φ = Phi (the checkpointed
// operator's availability) when the base model would price them lower;
// everything else falls through to the base model. It lets IC/FIC evaluate
// a (strategy, plan) pair the way FT-Search priced it.
type CheckpointAware struct {
	// Base prices pairs the plan does not checkpoint.
	Base FailureModel
	// Plan marks the checkpointed pairs.
	Plan *FTPlan
	// CkptPhi is the availability of a checkpointed operator
	// (CheckpointPhi).
	CkptPhi float64
}

// Phi implements FailureModel.
func (m CheckpointAware) Phi(s *Strategy, cfg, peIdx int) float64 {
	base := m.Base.Phi(s, cfg, peIdx)
	if m.Plan != nil && cfg < len(m.Plan.Mode) && peIdx < len(m.Plan.Mode[cfg]) &&
		m.Plan.Mode[cfg][peIdx] == FTCheckpoint && m.CkptPhi > base {
		return m.CkptPhi
	}
	return base
}

// Name implements FailureModel.
func (m CheckpointAware) Name() string { return "checkpoint-aware(" + m.Base.Name() + ")" }

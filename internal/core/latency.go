package core

import "math"

// This file estimates per-tuple processing latency under a strategy — the
// model behind the maximum-latency SLA clause of Section 3. Each host is
// approximated as an egalitarian processor-sharing server: a tuple whose
// processing needs x CPU cycles on a host with capacity K and utilisation
// ρ < 1 finishes after roughly x/(K·(1−ρ)) seconds. The estimate is
// deliberately conservative: a PE's per-stage latency in a configuration is
// taken on the most utilised host among its active replicas, because after
// any single failure the survivor may be the replica on the busier host.
//
// The approximation is only meaningful for non-overloaded deployments; an
// overloaded (host, configuration) pair yields +Inf, which is also the
// correct SLA answer (queues grow without bound).

// StageLatency returns, for every PE (dense index), the estimated per-tuple
// latency in seconds in the given configuration under the strategy and
// placement. PEs with no active replica report +Inf.
func StageLatency(r *Rates, s *Strategy, asg *Assignment, cfg int) []float64 {
	d := r.Descriptor()
	app := d.App
	loads := HostLoads(r, s, asg, cfg)
	out := make([]float64, app.NumPEs())
	for p := range out {
		// Mean service demand per tuple: unit load over input rate.
		in := r.InRate(p, cfg)
		var cycles float64
		if in > 0 {
			cycles = r.UnitLoad(p, cfg) / in
		}
		worst := math.Inf(-1)
		any := false
		for rep := 0; rep < asg.K; rep++ {
			if !s.IsActive(cfg, p, rep) {
				continue
			}
			any = true
			h := asg.HostOf(p, rep)
			free := d.HostCapacity - loads[h]
			var lat float64
			switch {
			case in == 0:
				lat = 0
			case free <= 0:
				lat = math.Inf(1)
			default:
				lat = cycles / free
			}
			if lat > worst {
				worst = lat
			}
		}
		if !any {
			worst = math.Inf(1)
		}
		out[p] = worst
	}
	return out
}

// PathLatency returns the estimated worst-case end-to-end latency in the
// configuration: the maximum, over all source-to-sink paths, of the sum of
// the stage latencies along the path. Computed by dynamic programming over
// the topological order.
func PathLatency(r *Rates, s *Strategy, asg *Assignment, cfg int) float64 {
	app := r.Descriptor().App
	stage := StageLatency(r, s, asg, cfg)
	acc := make([]float64, app.NumComponents())
	worst := 0.0
	for _, id := range app.Topo() {
		var in float64
		for _, e := range app.In(id) {
			if acc[e.From] > in {
				in = acc[e.From]
			}
		}
		switch app.Component(id).Kind {
		case KindPE:
			acc[id] = in + stage[app.PEIndex(id)]
		case KindSink:
			acc[id] = in
			if in > worst {
				worst = in
			}
		default:
			acc[id] = in
		}
	}
	return worst
}

// MaxLatency returns the worst estimated end-to-end latency across all
// input configurations — the value to check against a maximum-latency SLA
// clause.
func MaxLatency(r *Rates, s *Strategy, asg *Assignment) float64 {
	worst := 0.0
	for c := range r.Descriptor().Configs {
		if l := PathLatency(r, s, asg, c); l > worst {
			worst = l
		}
	}
	return worst
}

package core

import (
	"errors"
	"fmt"
	"math"
)

// InputConfig is one discrete input configuration c ∈ C: a joint assignment
// of a production rate (tuples per second) to every data source, together
// with the probability of the configuration being active (P_C of the paper).
type InputConfig struct {
	// Name is a human-readable label ("Low", "High", ...).
	Name string
	// Rates holds one rate per source, aligned with App.Sources().
	Rates []float64
	// Prob is the probability mass of this configuration.
	Prob float64
}

// Descriptor is the application descriptor of the service model (Section 3):
// the application graph plus the statistical characterisation of its input
// and the deployment parameters needed by the optimisation.
type Descriptor struct {
	App *App
	// Configs enumerates the possible input configurations. Probabilities
	// must sum to 1 (within a small tolerance).
	Configs []InputConfig
	// HostCapacity is K: the CPU cycles per second available at each
	// deployment host (Eq. 11).
	HostCapacity float64
	// BillingPeriod is T, in seconds (Section 3).
	BillingPeriod float64
}

// probTolerance bounds the accepted deviation of the configuration
// probability mass from 1.
const probTolerance = 1e-9

// Validate checks the descriptor for internal consistency.
func (d *Descriptor) Validate() error {
	if d.App == nil {
		return errors.New("core: descriptor has no application")
	}
	if len(d.Configs) == 0 {
		return errors.New("core: descriptor has no input configurations")
	}
	if d.HostCapacity <= 0 {
		return fmt.Errorf("core: non-positive host capacity %v", d.HostCapacity)
	}
	if d.BillingPeriod <= 0 {
		return fmt.Errorf("core: non-positive billing period %v", d.BillingPeriod)
	}
	sum := 0.0
	for i, c := range d.Configs {
		if len(c.Rates) != d.App.NumSources() {
			return fmt.Errorf("core: config %d (%s) has %d rates for %d sources",
				i, c.Name, len(c.Rates), d.App.NumSources())
		}
		for j, r := range c.Rates {
			if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
				return fmt.Errorf("core: config %d (%s) has invalid rate %v for source %d", i, c.Name, r, j)
			}
		}
		if c.Prob < 0 || c.Prob > 1 || math.IsNaN(c.Prob) {
			return fmt.Errorf("core: config %d (%s) has invalid probability %v", i, c.Name, c.Prob)
		}
		sum += c.Prob
	}
	if math.Abs(sum-1) > probTolerance {
		return fmt.Errorf("core: configuration probabilities sum to %v, want 1", sum)
	}
	return nil
}

// NumConfigs returns the number of input configurations.
func (d *Descriptor) NumConfigs() int { return len(d.Configs) }

// WithProbs returns a copy of the descriptor with the configuration
// probabilities replaced (and optionally a different billing period when
// billingPeriod > 0). It is used to re-evaluate IC formulas against the
// probability mass actually realised by a concrete input trace instead of
// the a-priori characterisation.
func (d *Descriptor) WithProbs(probs []float64, billingPeriod float64) (*Descriptor, error) {
	if len(probs) != len(d.Configs) {
		return nil, fmt.Errorf("core: %d probabilities for %d configurations", len(probs), len(d.Configs))
	}
	out := *d
	out.Configs = make([]InputConfig, len(d.Configs))
	copy(out.Configs, d.Configs)
	for i, p := range probs {
		out.Configs[i].Prob = p
	}
	if billingPeriod > 0 {
		out.BillingPeriod = billingPeriod
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return &out, nil
}

// ConfigByName returns the index of the configuration with the given name,
// or -1 if absent.
func (d *Descriptor) ConfigByName(name string) int {
	for i, c := range d.Configs {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// SourceRate returns Δ(x_i, c) for a source component in configuration cfg.
func (d *Descriptor) SourceRate(id ComponentID, cfg int) float64 {
	si := d.App.SourceIndex(id)
	if si < 0 {
		panic(fmt.Sprintf("core: component %d is not a source", id))
	}
	return d.Configs[cfg].Rates[si]
}

// CrossConfigs builds the full Cartesian product C = R_1 × … × R_t from
// per-source rate alternatives. rates[i] lists the possible rates of source
// i (aligned with App.Sources()); probs[i][j] is the marginal probability of
// source i producing at rates[i][j]. Sources are assumed independent, as in
// the binning construction of Section 3. Configuration names are formed by
// joining the per-source alternative indices.
func CrossConfigs(rates [][]float64, probs [][]float64) ([]InputConfig, error) {
	if len(rates) != len(probs) {
		return nil, fmt.Errorf("core: %d rate lists but %d probability lists", len(rates), len(probs))
	}
	for i := range rates {
		if len(rates[i]) == 0 {
			return nil, fmt.Errorf("core: source %d has no rate alternatives", i)
		}
		if len(rates[i]) != len(probs[i]) {
			return nil, fmt.Errorf("core: source %d has %d rates but %d probabilities", i, len(rates[i]), len(probs[i]))
		}
	}
	total := 1
	for i := range rates {
		total *= len(rates[i])
	}
	out := make([]InputConfig, 0, total)
	idx := make([]int, len(rates))
	for {
		cfg := InputConfig{Prob: 1, Rates: make([]float64, len(rates))}
		name := ""
		for i, j := range idx {
			cfg.Rates[i] = rates[i][j]
			cfg.Prob *= probs[i][j]
			if i > 0 {
				name += "/"
			}
			name += fmt.Sprintf("%d", j)
		}
		cfg.Name = name
		out = append(out, cfg)
		// Advance the mixed-radix counter.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(rates[i]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return out, nil
}

package core

import (
	"math/rand"
	"testing"
)

// benchDescriptor builds a 32-PE layered application with 4 configurations.
func benchDescriptor(b *testing.B) *Descriptor {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	bd := NewBuilder("bench")
	src := bd.AddSource("src")
	sink := bd.AddSink("sink")
	var pes []ComponentID
	for i := 0; i < 32; i++ {
		pe := bd.AddPE("")
		if i == 0 || rng.Float64() < 0.3 {
			bd.Connect(src, pe, 1, 1e6*(1+rng.Float64()))
		} else {
			bd.Connect(pes[rng.Intn(len(pes))], pe, 0.5+rng.Float64(), 1e6*(1+rng.Float64()))
		}
		pes = append(pes, pe)
	}
	for _, pe := range pes {
		bd.Connect(pe, sink, 0, 0)
	}
	app, err := bd.Build()
	if err != nil {
		b.Fatal(err)
	}
	d := &Descriptor{
		App: app,
		Configs: []InputConfig{
			{Name: "a", Rates: []float64{4}, Prob: 0.4},
			{Name: "b", Rates: []float64{8}, Prob: 0.3},
			{Name: "c", Rates: []float64{12}, Prob: 0.2},
			{Name: "d", Rates: []float64{16}, Prob: 0.1},
		},
		HostCapacity:  1e9,
		BillingPeriod: 300,
	}
	if err := d.Validate(); err != nil {
		b.Fatal(err)
	}
	return d
}

func BenchmarkNewRates(b *testing.B) {
	d := benchDescriptor(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewRates(d)
	}
}

func BenchmarkIC(b *testing.B) {
	d := benchDescriptor(b)
	r := NewRates(d)
	s := AllActive(4, 32, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IC(r, s, Pessimistic{})
	}
}

func BenchmarkCost(b *testing.B) {
	d := benchDescriptor(b)
	r := NewRates(d)
	s := AllActive(4, 32, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cost(r, s)
	}
}

func BenchmarkHostLoads(b *testing.B) {
	d := benchDescriptor(b)
	r := NewRates(d)
	s := AllActive(4, 32, 2)
	asg := NewAssignment(32, 2, 8)
	for p := 0; p < 32; p++ {
		asg.Host[p][0] = p % 8
		asg.Host[p][1] = (p + 1) % 8
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HostLoads(r, s, asg, i%4)
	}
}

func BenchmarkStageLatency(b *testing.B) {
	d := benchDescriptor(b)
	r := NewRates(d)
	s := AllActive(4, 32, 2)
	asg := NewAssignment(32, 2, 8)
	for p := 0; p < 32; p++ {
		asg.Host[p][0] = p % 8
		asg.Host[p][1] = (p + 1) % 8
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StageLatency(r, s, asg, i%4)
	}
}

package core

import "math"

// FailureModel describes the function φ(x_i, c, s): the probability that at
// least one replica of a PE is alive and active when the input configuration
// is c and the replica activation strategy is s (Section 4.3).
type FailureModel interface {
	// Phi returns φ for the PE with dense index peIdx in configuration cfg
	// under strategy s. Implementations must return a value in [0, 1].
	Phi(s *Strategy, cfg, peIdx int) float64
	// Name identifies the model in reports.
	Name() string
}

// Pessimistic is the paper's pessimistic failure model (Eq. 14): in any
// failure scenario all replicas of a PE fail except one, the survivor is
// chosen adversarially among the inactive replicas whenever some replica is
// inactive, and failed replicas never recover. Hence φ = 1 only when all k
// replicas are active, 0 otherwise. The IC computed under this model is a
// lower bound on the IC observed on a real deployment.
type Pessimistic struct{}

// Phi implements FailureModel.
func (Pessimistic) Phi(s *Strategy, cfg, peIdx int) float64 {
	if s.NumActive(cfg, peIdx) < s.K {
		return 0
	}
	return 1
}

// Name implements FailureModel.
func (Pessimistic) Name() string { return "pessimistic" }

// NoFailure is the best-case model: every PE always processes its input.
// Under it FIC = BIC, so IC = 1 for every strategy satisfying Eq. 12.
type NoFailure struct{}

// Phi implements FailureModel.
func (NoFailure) Phi(*Strategy, int, int) float64 { return 1 }

// Name implements FailureModel.
func (NoFailure) Name() string { return "no-failure" }

// Independent is an alternative failure model (paper Section 6, future work
// direction i): each replica is independently failed with probability P at
// any point in time, and a PE processes its input as long as at least one of
// its *active* replicas is alive: φ = 1 − P^numActive. For small P it gives
// far less pessimistic IC estimates on partially replicated configurations;
// unlike Pessimistic it also accounts for the (unlikely) event that every
// replica fails at once, so the two models are not comparable in general.
type Independent struct {
	// P is the per-replica failure probability, in [0, 1].
	P float64
}

// Phi implements FailureModel.
func (m Independent) Phi(s *Strategy, cfg, peIdx int) float64 {
	n := s.NumActive(cfg, peIdx)
	if n == 0 {
		return 0
	}
	return 1 - math.Pow(m.P, float64(n))
}

// Name implements FailureModel.
func (m Independent) Name() string { return "independent" }

// SingleSurvivor is a parametric variant of the pessimistic model in which
// the surviving replica is chosen uniformly at random among all replicas
// rather than adversarially among the inactive ones: φ equals the fraction
// of replicas that are active. It sits between Pessimistic and NoFailure and
// is useful to study the looseness of the pessimistic bound.
type SingleSurvivor struct{}

// Phi implements FailureModel.
func (SingleSurvivor) Phi(s *Strategy, cfg, peIdx int) float64 {
	return float64(s.NumActive(cfg, peIdx)) / float64(s.K)
}

// Name implements FailureModel.
func (SingleSurvivor) Name() string { return "single-survivor" }

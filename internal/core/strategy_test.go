package core

import (
	"encoding/json"
	"testing"
)

func TestStrategyBasics(t *testing.T) {
	s := NewStrategy(2, 3, 2)
	if s.NumConfigs() != 2 || s.NumPEs() != 3 || s.K != 2 {
		t.Fatalf("dims = (%d,%d,%d)", s.NumConfigs(), s.NumPEs(), s.K)
	}
	if s.TotalActive() != 0 {
		t.Fatalf("fresh strategy has %d active replicas", s.TotalActive())
	}
	s.Set(1, 2, 0, true)
	if !s.IsActive(1, 2, 0) || s.NumActive(1, 2) != 1 {
		t.Fatal("Set/IsActive/NumActive mismatch")
	}
	if err := s.Validate(); err == nil {
		t.Fatal("Validate accepted a strategy with dead PEs")
	}
}

func TestAllActiveValidates(t *testing.T) {
	s := AllActive(3, 4, 2)
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := s.TotalActive(); got != 3*4*2 {
		t.Fatalf("TotalActive = %d, want 24", got)
	}
}

func TestStrategyCloneIsDeep(t *testing.T) {
	s := AllActive(2, 2, 2)
	c := s.Clone()
	c.Set(0, 0, 0, false)
	if !s.IsActive(0, 0, 0) {
		t.Fatal("Clone shares backing storage with original")
	}
}

func TestStrategyJSONRoundTrip(t *testing.T) {
	s := AllActive(2, 2, 2)
	s.Set(1, 0, 1, false)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back Strategy
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if back.K != 2 || back.IsActive(1, 0, 1) || !back.IsActive(1, 0, 0) {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}

func TestStrategyJSONRejectsBadShapes(t *testing.T) {
	var s Strategy
	if err := json.Unmarshal([]byte(`{"replication":0,"active":[]}`), &s); err == nil {
		t.Error("accepted zero replication")
	}
	if err := json.Unmarshal([]byte(`{"replication":2,"active":[[[true]]]}`), &s); err == nil {
		t.Error("accepted replica arity mismatch")
	}
	if err := json.Unmarshal([]byte(`{bad`), &s); err == nil {
		t.Error("accepted malformed JSON")
	}
}

func TestDescriptorJSONRoundTrip(t *testing.T) {
	_, d := buildDiamond(t)
	data, err := MarshalDescriptor(d)
	if err != nil {
		t.Fatalf("MarshalDescriptor: %v", err)
	}
	back, err := UnmarshalDescriptor(data)
	if err != nil {
		t.Fatalf("UnmarshalDescriptor: %v", err)
	}
	if back.App.Name() != d.App.Name() {
		t.Errorf("name = %q, want %q", back.App.Name(), d.App.Name())
	}
	if back.App.NumComponents() != d.App.NumComponents() {
		t.Errorf("components = %d, want %d", back.App.NumComponents(), d.App.NumComponents())
	}
	if len(back.Configs) != len(d.Configs) {
		t.Fatalf("configs = %d, want %d", len(back.Configs), len(d.Configs))
	}
	// Rates must be preserved exactly: compare Δ on both.
	r1, r2 := NewRates(d), NewRates(back)
	for c := range d.Configs {
		for _, id := range d.App.Components() {
			if !almostEqual(r1.Rate(id.ID, c), r2.Rate(id.ID, c)) {
				t.Errorf("rate mismatch for %s in cfg %d", id.Name, c)
			}
		}
	}
}

func TestUnmarshalDescriptorErrors(t *testing.T) {
	if _, err := UnmarshalDescriptor([]byte(`{`)); err == nil {
		t.Error("accepted malformed JSON")
	}
	if _, err := UnmarshalDescriptor([]byte(`{"components":[{"name":"x","kind":"widget"}]}`)); err == nil {
		t.Error("accepted unknown component kind")
	}
	// Structurally broken graph (source only).
	if _, err := UnmarshalDescriptor([]byte(`{"components":[{"name":"s","kind":"source"}],"configs":[{"rates":[1],"prob":1}],"host_capacity":1,"billing_period":1}`)); err == nil {
		t.Error("accepted sourceless-PE graph")
	}
}

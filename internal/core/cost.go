package core

// Cost returns the execution cost of a strategy (Eq. 13): the total CPU time
// (in cycles) consumed by all active PE replicas over one billing period T,
// weighted by configuration probabilities. Because the cost of an active
// replica does not depend on which replica it is, the cost reduces to
//
//	T · Σ_c P_C(c) · Σ_pe unitLoad(pe, c) · numActive(pe, c).
func Cost(r *Rates, s *Strategy) float64 {
	d := r.Descriptor()
	var sum float64
	for c, cfg := range d.Configs {
		if cfg.Prob == 0 {
			continue
		}
		var per float64
		for p := 0; p < d.App.NumPEs(); p++ {
			per += r.UnitLoad(p, c) * float64(s.NumActive(c, p))
		}
		sum += cfg.Prob * per
	}
	return d.BillingPeriod * sum
}

// HostLoad returns the CPU cycles per second demanded on a host in a
// configuration: the sum of the unit loads of the active replicas assigned
// to it (left-hand side of Eq. 11).
func HostLoad(r *Rates, s *Strategy, asg *Assignment, host, cfg int) float64 {
	var load float64
	for p := range asg.Host {
		for rep, h := range asg.Host[p] {
			if h == host && s.IsActive(cfg, p, rep) {
				load += r.UnitLoad(p, cfg)
			}
		}
	}
	return load
}

// Overloaded reports whether any host exceeds its capacity K in any input
// configuration under the strategy (violation of Eq. 11), returning the
// first offending (host, cfg) pair.
func Overloaded(r *Rates, s *Strategy, asg *Assignment) (host, cfg int, overloaded bool) {
	d := r.Descriptor()
	for c := range d.Configs {
		for h := 0; h < asg.NumHosts; h++ {
			if HostLoad(r, s, asg, h, c) >= d.HostCapacity {
				return h, c, true
			}
		}
	}
	return 0, 0, false
}

// HostLoads returns the per-host loads for one configuration.
func HostLoads(r *Rates, s *Strategy, asg *Assignment, cfg int) []float64 {
	loads := make([]float64, asg.NumHosts)
	for p := range asg.Host {
		for rep, h := range asg.Host[p] {
			if s.IsActive(cfg, p, rep) {
				loads[h] += r.UnitLoad(p, cfg)
			}
		}
	}
	return loads
}

package core

// Rates caches the failure-free expected tuple rates Δ(x, c) for every
// component and input configuration of a descriptor, and the derived
// per-PE "unit loads" used throughout the optimisation:
//
//	unitLoad(pe, c) = Σ_{xj ∈ pred(pe)} γ(xj, pe) · Δ(xj, c)
//
// which is the CPU cycles per second one active replica of the PE consumes
// in configuration c, and
//
//	inRate(pe, c) = Σ_{xj ∈ pred(pe)} Δ(xj, c)
//
// the tuples per second one replica processes. Both follow from the linear
// load model of Section 3.
type Rates struct {
	desc *Descriptor
	// rate[cfg][component] = Δ(component, cfg)
	rate [][]float64
	// unitLoad[cfg][peIdx] = cycles/s of one active replica
	unitLoad [][]float64
	// inRate[cfg][peIdx] = tuples/s processed by one replica
	inRate [][]float64
}

// NewRates computes Δ for every component in every configuration by a single
// topological pass per configuration.
func NewRates(d *Descriptor) *Rates {
	app := d.App
	n := app.NumComponents()
	r := &Rates{
		desc:     d,
		rate:     make([][]float64, d.NumConfigs()),
		unitLoad: make([][]float64, d.NumConfigs()),
		inRate:   make([][]float64, d.NumConfigs()),
	}
	for c := range d.Configs {
		rates := make([]float64, n)
		ul := make([]float64, app.NumPEs())
		ir := make([]float64, app.NumPEs())
		for _, id := range app.Topo() {
			switch app.Component(id).Kind {
			case KindSource:
				rates[id] = d.SourceRate(id, c)
			case KindPE:
				pi := app.PEIndex(id)
				var out, load, in float64
				for _, e := range app.In(id) {
					out += e.Selectivity * rates[e.From]
					load += e.CostCycles * rates[e.From]
					in += rates[e.From]
				}
				rates[id] = out
				ul[pi] = load
				ir[pi] = in
			case KindSink:
				var in float64
				for _, e := range app.In(id) {
					in += rates[e.From]
				}
				rates[id] = in
			}
		}
		r.rate[c] = rates
		r.unitLoad[c] = ul
		r.inRate[c] = ir
	}
	return r
}

// Descriptor returns the descriptor the rates were computed from.
func (r *Rates) Descriptor() *Descriptor { return r.desc }

// Rate returns Δ(id, cfg): the failure-free expected output rate of the
// component in tuples per second (for sinks, the input rate).
func (r *Rates) Rate(id ComponentID, cfg int) float64 { return r.rate[cfg][id] }

// UnitLoad returns the CPU cycles per second consumed by one active replica
// of the PE with dense index peIdx in configuration cfg.
func (r *Rates) UnitLoad(peIdx, cfg int) float64 { return r.unitLoad[cfg][peIdx] }

// InRate returns the tuples per second processed by one replica of the PE
// with dense index peIdx in configuration cfg (the Σ Δ(pred) term).
func (r *Rates) InRate(peIdx, cfg int) float64 { return r.inRate[cfg][peIdx] }

// MaxConfig returns the index of the configuration with the highest total
// single-replica CPU demand Σ_pe unitLoad(pe, c) — the most resource-hungry
// configuration, used by FT-Search's exploration-order heuristic.
func (r *Rates) MaxConfig() int {
	best, bestLoad := 0, -1.0
	for c := range r.unitLoad {
		var tot float64
		for _, l := range r.unitLoad[c] {
			tot += l
		}
		if tot > bestLoad {
			best, bestLoad = c, tot
		}
	}
	return best
}

// ConfigsByLoadDesc returns configuration indices ordered from the most to
// the least resource-hungry (total single-replica CPU demand).
func (r *Rates) ConfigsByLoadDesc() []int {
	type cl struct {
		cfg  int
		load float64
	}
	items := make([]cl, len(r.unitLoad))
	for c := range r.unitLoad {
		var tot float64
		for _, l := range r.unitLoad[c] {
			tot += l
		}
		items[c] = cl{cfg: c, load: tot}
	}
	// Insertion sort: configuration counts are tiny.
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && items[j].load > items[j-1].load; j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
	out := make([]int, len(items))
	for i, it := range items {
		out[i] = it.cfg
	}
	return out
}

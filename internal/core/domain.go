package core

import "fmt"

// DomainLevel selects one tier of the fault-domain hierarchy host ⊂ rack ⊂
// zone. Host is the weakest tier (every host is its own fault domain — the
// paper's independent-crash world); zone is the strongest.
type DomainLevel int8

const (
	// LevelHost treats every host as its own fault domain.
	LevelHost DomainLevel = iota
	// LevelRack groups hosts by rack (shared top-of-rack switch / PDU).
	LevelRack
	// LevelZone groups racks by zone (shared power feed / cooling / room).
	LevelZone
)

var levelNames = [...]string{"host", "rack", "zone"}

// String names a domain level for diagnostics.
func (l DomainLevel) String() string {
	if l >= 0 && int(l) < len(levelNames) {
		return levelNames[l]
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// DomainMap assigns every host to a hierarchy of fault domains: each host
// lives in exactly one rack and each rack in exactly one zone, so a rack
// outage (switch, PDU) takes down all its hosts at once and a zone outage
// all its racks. The map is the ground truth both for domain-aware placement
// anti-affinity and for the correlated failure model; the engine uses it to
// crash whole domains atomically.
//
// Rack and zone indices need not be dense: domains with no hosts are legal
// (a degenerate but reachable state when hosts are decommissioned), and all
// validators and placement routines must survive them.
type DomainMap struct {
	// NumHosts is |H|.
	NumHosts int
	// Rack[h] is the rack index of host h, in [0, NumHosts).
	Rack []int
	// Zone[h] is the zone index of host h, in [0, NumHosts). All hosts of a
	// rack must share one zone (rack ⊂ zone).
	Zone []int
}

// UniformDomains builds the regular layout: hosts 0..n-1 packed into racks
// of hostsPerRack, racks packed into zones of racksPerZone. The trailing
// rack/zone may be smaller. hostsPerRack and racksPerZone values below 1 are
// treated as 1.
func UniformDomains(numHosts, hostsPerRack, racksPerZone int) *DomainMap {
	if hostsPerRack < 1 {
		hostsPerRack = 1
	}
	if racksPerZone < 1 {
		racksPerZone = 1
	}
	m := &DomainMap{
		NumHosts: numHosts,
		Rack:     make([]int, numHosts),
		Zone:     make([]int, numHosts),
	}
	for h := 0; h < numHosts; h++ {
		m.Rack[h] = h / hostsPerRack
		m.Zone[h] = m.Rack[h] / racksPerZone
	}
	return m
}

// Validate checks the map is well formed: slice lengths match NumHosts,
// rack and zone indices are in [0, NumHosts), and no rack spans two zones.
func (m *DomainMap) Validate() error {
	if m.NumHosts < 1 {
		return fmt.Errorf("core: domain map over %d hosts", m.NumHosts)
	}
	if len(m.Rack) != m.NumHosts || len(m.Zone) != m.NumHosts {
		return fmt.Errorf("core: domain map over %d hosts has %d rack and %d zone entries",
			m.NumHosts, len(m.Rack), len(m.Zone))
	}
	zoneOfRack := make(map[int]int, m.NumHosts)
	for h := 0; h < m.NumHosts; h++ {
		r, z := m.Rack[h], m.Zone[h]
		if r < 0 || r >= m.NumHosts {
			return fmt.Errorf("core: host %d in invalid rack %d (want [0, %d))", h, r, m.NumHosts)
		}
		if z < 0 || z >= m.NumHosts {
			return fmt.Errorf("core: host %d in invalid zone %d (want [0, %d))", h, z, m.NumHosts)
		}
		if zPrev, ok := zoneOfRack[r]; ok && zPrev != z {
			return fmt.Errorf("core: rack %d spans zones %d and %d (rack ⊂ zone violated at host %d)", r, zPrev, z, h)
		}
		zoneOfRack[r] = z
	}
	return nil
}

// DomainOf returns the fault-domain index of the host at the level. At
// LevelHost the domain is the host itself.
func (m *DomainMap) DomainOf(host int, level DomainLevel) int {
	switch level {
	case LevelRack:
		return m.Rack[host]
	case LevelZone:
		return m.Zone[host]
	default:
		return host
	}
}

// DistinctDomains counts the distinct non-empty fault domains at the level —
// the number a placement can actually spread replicas across. Empty domains
// (indices with no hosts) do not count.
func (m *DomainMap) DistinctDomains(level DomainLevel) int {
	if level == LevelHost {
		return m.NumHosts
	}
	seen := make(map[int]bool, m.NumHosts)
	for h := 0; h < m.NumHosts; h++ {
		seen[m.DomainOf(h, level)] = true
	}
	return len(seen)
}

// HostsIn returns the hosts belonging to the fault domain with the given
// index at the level, in host order. The result is empty for an empty or
// unknown domain index.
func (m *DomainMap) HostsIn(level DomainLevel, domain int) []int {
	var out []int
	for h := 0; h < m.NumHosts; h++ {
		if m.DomainOf(h, level) == domain {
			out = append(out, h)
		}
	}
	return out
}

// SameDomain reports whether two hosts share a fault domain at the level.
func (m *DomainMap) SameDomain(a, b int, level DomainLevel) bool {
	return m.DomainOf(a, level) == m.DomainOf(b, level)
}

// ValidateDomains checks domain-level anti-affinity: no two replicas of the
// same PE share a fault domain at the level. At LevelHost this is exactly
// Validate(true)'s anti-affinity check.
func (a *Assignment) ValidateDomains(dom *DomainMap, level DomainLevel) error {
	if dom.NumHosts != a.NumHosts {
		return fmt.Errorf("core: domain map covers %d hosts, assignment %d", dom.NumHosts, a.NumHosts)
	}
	for p := range a.Host {
		seen := make(map[int]bool, a.K)
		for r, h := range a.Host[p] {
			if h < 0 || h >= a.NumHosts {
				return fmt.Errorf("core: replica (%d,%d) assigned to invalid host %d of %d", p, r, h, a.NumHosts)
			}
			d := dom.DomainOf(h, level)
			if seen[d] {
				return fmt.Errorf("core: PE %d has multiple replicas in %s domain %d", p, level, d)
			}
			seen[d] = true
		}
	}
	return nil
}

// Correlated is the correlated-failure counterpart of Independent: hosts
// fail independently with probability PHost, but whole racks additionally
// fail together with probability PRack and whole zones with PZone (shared
// switches, PDUs and power feeds — the correlated regime "Tolerating
// Correlated Failures in Massively Parallel Stream Processing Engines"
// shows dominates at scale). A PE processes its input as long as at least
// one host carrying an *active* replica of it is up, so
//
//	φ = 1 − ∏_z [P_Z + (1−P_Z)·∏_{r⊂z} [P_R + (1−P_R)·∏_{h∈r} P_H]]
//
// over the zones, racks and hosts that carry active replicas. Replicas that
// share a rack or zone hang off the same correlated term instead of
// multiplying independently, so the model prices shared-domain placements
// strictly worse than spread ones — the quantitative argument for
// domain-aware anti-affinity. With PRack = PZone = 0 it reduces exactly to
// Independent over the distinct hosts used.
//
// Unlike the paper's models, φ depends on where replicas run, so the model
// captures the placement and domain map at construction.
type Correlated struct {
	// Domains maps hosts to racks and zones.
	Domains *DomainMap
	// Asg is the replicated placement φ is evaluated against.
	Asg *Assignment
	// PHost, PRack and PZone are the independent outage probabilities of a
	// host, a whole rack and a whole zone, each in [0, 1].
	PHost, PRack, PZone float64
}

// NewCorrelated validates the inputs and builds the model.
func NewCorrelated(dom *DomainMap, asg *Assignment, pHost, pRack, pZone float64) (Correlated, error) {
	if err := dom.Validate(); err != nil {
		return Correlated{}, err
	}
	if dom.NumHosts != asg.NumHosts {
		return Correlated{}, fmt.Errorf("core: domain map covers %d hosts, assignment %d", dom.NumHosts, asg.NumHosts)
	}
	for _, p := range []float64{pHost, pRack, pZone} {
		if !(p >= 0 && p <= 1) {
			return Correlated{}, fmt.Errorf("core: outage probability %v outside [0, 1]", p)
		}
	}
	return Correlated{Domains: dom, Asg: asg, PHost: pHost, PRack: pRack, PZone: pZone}, nil
}

// Phi implements FailureModel.
func (m Correlated) Phi(s *Strategy, cfg, peIdx int) float64 {
	// Distinct hosts carrying an active replica of the PE. K is tiny, so a
	// linear scan beats any set structure.
	var hosts [8]int
	n := 0
	for k := 0; k < s.K; k++ {
		if !s.IsActive(cfg, peIdx, k) {
			continue
		}
		h := m.Asg.HostOf(peIdx, k)
		dup := false
		for i := 0; i < n; i++ {
			if hosts[i] == h {
				dup = true
				break
			}
		}
		if !dup && n < len(hosts) {
			hosts[n] = h
			n++
		}
	}
	if n == 0 {
		return 0
	}
	// P(every active host down), grouped zone → rack → host so shared
	// domains correlate.
	pAllDown := 1.0
	var zoneDone [8]bool
	for i := 0; i < n; i++ {
		if zoneDone[i] {
			continue
		}
		z := m.Domains.Zone[hosts[i]]
		prodRack := 1.0
		var rackDone [8]bool
		for j := i; j < n; j++ {
			if rackDone[j] || m.Domains.Zone[hosts[j]] != z {
				continue
			}
			r := m.Domains.Rack[hosts[j]]
			prodHost := 1.0
			for l := j; l < n; l++ {
				if m.Domains.Zone[hosts[l]] == z && m.Domains.Rack[hosts[l]] == r {
					rackDone[l] = true
					zoneDone[l] = true
					prodHost *= m.PHost
				}
			}
			prodRack *= m.PRack + (1-m.PRack)*prodHost
		}
		pAllDown *= m.PZone + (1-m.PZone)*prodRack
	}
	return 1 - pAllDown
}

// Name implements FailureModel.
func (m Correlated) Name() string { return "correlated" }

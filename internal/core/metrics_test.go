package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOutputCompletenessPipeline(t *testing.T) {
	_, d := buildPipeline(t)
	r := NewRates(d)
	// LAAR strategy: replicated at Low only. Under the pessimistic model
	// the sink receives nothing during High: OC = 0.8·4/(0.8·4+0.2·8) =
	// 3.2/4.8 = 2/3 (same as IC here because the graph is a pure chain).
	s := laarPipelineStrategy()
	if got := OutputCompleteness(r, s, Pessimistic{}); !almostEqual(got, 2.0/3.0) {
		t.Fatalf("OC = %v, want 2/3", got)
	}
	if got := OutputCompleteness(r, AllActive(2, 2, 2), Pessimistic{}); !almostEqual(got, 1) {
		t.Fatalf("OC(all active) = %v, want 1", got)
	}
}

func TestOutputCompletenessHidesInternalDivergence(t *testing.T) {
	// A diamond where only one branch reaches the sink: losing the other
	// branch is invisible to OC but visible to IC — the reason the paper
	// prefers IC (Section 4.3).
	b := NewBuilder("blind")
	src := b.AddSource("src")
	main := b.AddPE("main")
	side := b.AddPE("side") // feeds a PE whose output goes nowhere visible
	tail := b.AddPE("tail")
	sink := b.AddSink("sink")
	aux := b.AddSink("aux")
	b.Connect(src, main, 1, 1e6)
	b.Connect(src, side, 1, 1e6)
	b.Connect(main, tail, 1, 1e6)
	b.Connect(tail, sink, 0, 0)
	b.Connect(side, aux, 0, 0)
	app, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := &Descriptor{
		App:           app,
		Configs:       []InputConfig{{Name: "Only", Rates: []float64{10}, Prob: 1}},
		HostCapacity:  1e9,
		BillingPeriod: 60,
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	r := NewRates(d)
	s := AllActive(1, 3, 2)
	s.Set(0, app.PEIndex(side), 1, false) // side unprotected
	// OC on the main sink path is unaffected... but side feeds aux, which
	// OC *does* see. Check both metrics quantitatively instead:
	ic := IC(r, s, Pessimistic{})
	oc := OutputCompleteness(r, s, Pessimistic{})
	// IC: main+tail contribute 10 each, side contributes 0 of 10:
	// 20/30 = 2/3. OC: sink gets 10 of 10, aux gets 0 of 10: 10/20 = 1/2.
	if !almostEqual(ic, 2.0/3.0) {
		t.Errorf("IC = %v, want 2/3", ic)
	}
	if !almostEqual(oc, 0.5) {
		t.Errorf("OC = %v, want 1/2", oc)
	}
}

func TestAvgReplicationFactor(t *testing.T) {
	_, d := buildPipeline(t)
	if got := AvgReplicationFactor(d, AllActive(2, 2, 2)); !almostEqual(got, 2) {
		t.Fatalf("ARF(all active) = %v, want 2", got)
	}
	s := laarPipelineStrategy() // single replicas during High (p=0.2)
	want := 0.8*2 + 0.2*1
	if got := AvgReplicationFactor(d, s); !almostEqual(got, want) {
		t.Fatalf("ARF = %v, want %v", got, want)
	}
}

func TestAvgReplicationFactorBlindToProtectionPlacement(t *testing.T) {
	// Two strategies with identical average replication but different IC:
	// protecting the Low configuration (probable) vs the High one (rare).
	_, d := buildPipeline(t)
	r := NewRates(d)
	protectLow := AllActive(2, 2, 2)
	protectLow.Set(1, 0, 1, false)
	protectLow.Set(1, 1, 1, false)
	protectHigh := AllActive(2, 2, 2)
	protectHigh.Set(0, 0, 1, false)
	protectHigh.Set(0, 1, 1, false)
	arfLow := AvgReplicationFactor(d, protectLow)
	arfHigh := AvgReplicationFactor(d, protectHigh)
	// ARF differs (probabilities weight the configs differently)...
	if arfLow == arfHigh {
		t.Logf("ARFs coincide: %v", arfLow)
	}
	icLow := IC(r, protectLow, Pessimistic{})
	icHigh := IC(r, protectHigh, Pessimistic{})
	if icLow <= icHigh {
		t.Fatalf("protecting the probable configuration must yield higher IC: %v vs %v", icLow, icHigh)
	}
}

func TestStageLatencyPipeline(t *testing.T) {
	_, d := buildPipeline(t)
	r := NewRates(d)
	asg := pipelineAssignment()
	s := AllActive(2, 2, 2)
	// Low: each host carries 8e8 cycles/s of load; free = 2e8. Per-tuple
	// service 1e8 cycles → 0.5 s per stage.
	lat := StageLatency(r, s, asg, 0)
	for p, l := range lat {
		if !almostEqual(l, 0.5) {
			t.Errorf("stage latency PE %d = %v, want 0.5", p, l)
		}
	}
	// High with all active: hosts overloaded → +Inf.
	lat = StageLatency(r, s, asg, 1)
	for p, l := range lat {
		if !math.IsInf(l, 1) {
			t.Errorf("overloaded stage latency PE %d = %v, want +Inf", p, l)
		}
	}
	// LAAR strategy at High: one replica per host, free = 2e8 → 0.5 s.
	lat = StageLatency(r, laarPipelineStrategy(), asg, 1)
	for p, l := range lat {
		if !almostEqual(l, 0.5) {
			t.Errorf("LAAR stage latency PE %d = %v, want 0.5", p, l)
		}
	}
}

func TestPathAndMaxLatency(t *testing.T) {
	_, d := buildPipeline(t)
	r := NewRates(d)
	asg := pipelineAssignment()
	laar := laarPipelineStrategy()
	// Two 0.5 s stages in sequence → 1 s end-to-end in both configs.
	if got := PathLatency(r, laar, asg, 0); !almostEqual(got, 1) {
		t.Errorf("PathLatency(Low) = %v, want 1", got)
	}
	if got := MaxLatency(r, laar, asg); !almostEqual(got, 1) {
		t.Errorf("MaxLatency = %v, want 1", got)
	}
	// Static replication is overloaded at High → infinite max latency.
	if got := MaxLatency(r, AllActive(2, 2, 2), asg); !math.IsInf(got, 1) {
		t.Errorf("MaxLatency(SR) = %v, want +Inf", got)
	}
}

func TestLatencyDeadPEIsInfinite(t *testing.T) {
	_, d := buildPipeline(t)
	r := NewRates(d)
	asg := pipelineAssignment()
	s := AllActive(2, 2, 2)
	s.Set(0, 0, 0, false)
	s.Set(0, 0, 1, false) // PE1 dark at Low
	lat := StageLatency(r, s, asg, 0)
	if !math.IsInf(lat[0], 1) {
		t.Fatalf("dark PE latency = %v, want +Inf", lat[0])
	}
}

func TestMetricsBoundsQuick(t *testing.T) {
	_, d := buildDiamond(t)
	r := NewRates(d)
	f := func(bits uint16) bool {
		s := NewStrategy(2, 4, 2)
		i := 0
		for c := 0; c < 2; c++ {
			for p := 0; p < 4; p++ {
				s.Set(c, p, 0, true)
				s.Set(c, p, 1, bits&(1<<i) != 0)
				i++
			}
		}
		oc := OutputCompleteness(r, s, Pessimistic{})
		arf := AvgReplicationFactor(d, s)
		return oc >= 0 && oc <= 1+1e-12 && arf >= 1 && arf <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

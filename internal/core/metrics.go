package core

// This file implements the alternative fault-tolerance metrics Section 4.3
// mentions alongside internal completeness — output completeness and the
// average replication factor — so the three can be compared empirically.

// OutputCompleteness measures, under a failure model and strategy, the
// expected fraction of tuples delivered to the data sinks relative to the
// failure-free deliveries. Unlike IC it only observes the application
// boundary: divergence of internal PE state is invisible to it, which is
// why the paper prefers IC.
func OutputCompleteness(r *Rates, s *Strategy, model FailureModel) float64 {
	d := r.Descriptor()
	app := d.App
	var num, den float64
	hat := make([]float64, app.NumComponents())
	for c, cfg := range d.Configs {
		if cfg.Prob == 0 {
			continue
		}
		for _, id := range app.Topo() {
			switch app.Component(id).Kind {
			case KindSource:
				hat[id] = d.SourceRate(id, c)
			case KindPE:
				var in float64
				for _, e := range app.In(id) {
					in += e.Selectivity * hat[e.From]
				}
				hat[id] = model.Phi(s, c, app.PEIndex(id)) * in
			}
		}
		for _, id := range app.Sinks() {
			var in, inFF float64
			for _, e := range app.In(id) {
				in += hat[e.From]
				inFF += r.Rate(e.From, c)
			}
			num += cfg.Prob * in
			den += cfg.Prob * inFF
		}
	}
	if den == 0 {
		return 1
	}
	return num / den
}

// AvgReplicationFactor returns the expected number of active replicas per
// PE, weighted by configuration probability — the naive "how replicated is
// this deployment" measure. It carries no information about which PEs are
// protected when, so two strategies with equal average replication can have
// wildly different IC values.
func AvgReplicationFactor(d *Descriptor, s *Strategy) float64 {
	numPEs := d.App.NumPEs()
	if numPEs == 0 {
		return 0
	}
	var sum float64
	for c, cfg := range d.Configs {
		var act int
		for p := 0; p < numPEs; p++ {
			act += s.NumActive(c, p)
		}
		sum += cfg.Prob * float64(act)
	}
	return sum / float64(numPEs)
}

package cluster

import (
	"sync"
	"time"

	"laar/internal/controlplane"
	"laar/internal/netx"
)

// hostNode is one host process: it carries the replica slots the
// topology assigns to it, judges activation commands through per-slot
// proxy state (the kernel's idempotency machine), heartbeats every
// controller, and moves data tuples down the pipeline.
type hostNode struct {
	spec NodeSpec

	mu    sync.Mutex
	slots map[[2]int]*hostSlot

	// ctrl[j] is the duplex connection to controller j: hellos and beats
	// flow up, commands come back down, acks answer on the same link.
	ctrl []*netx.Conn
	// hosts[h] carries forwarded tuples to host h (nil for self).
	hosts []*netx.Conn
	// next[h] is true when host h carries a replica of some stage this
	// host feeds (computed once; topology is static).
	downstream map[int][]int // pe → distinct hosts carrying stage pe+1
}

// hostSlot is one replica living on this host.
type hostSlot struct {
	proxy     controlplane.ProxyState
	active    bool
	lastID    uint64
	processed uint64
}

func newHostNode(spec NodeSpec) *hostNode {
	h := &hostNode{
		spec:       spec,
		slots:      make(map[[2]int]*hostSlot),
		ctrl:       make([]*netx.Conn, spec.Top.Controllers),
		hosts:      make([]*netx.Conn, spec.Top.Hosts),
		downstream: make(map[int][]int),
	}
	spec.Top.Slots(spec.Index, func(pe, k int) {
		h.slots[[2]int{pe, k}] = &hostSlot{}
	})
	// Precompute where each stage this host carries forwards to.
	for pe := 0; pe < spec.Top.PEs-1; pe++ {
		if !h.carries(pe) {
			continue
		}
		seen := map[int]bool{}
		for k := 0; k < spec.Top.Replicas; k++ {
			g := spec.Top.HostOf(pe+1, k)
			if !seen[g] {
				seen[g] = true
				h.downstream[pe] = append(h.downstream[pe], g)
			}
		}
	}

	hello := encode(Hello{Kind: "host", Index: spec.Index, Incarnation: spec.Incarnation})
	for j := range h.ctrl {
		if j >= len(spec.CtrlAddrs) || spec.CtrlAddrs[j] == "" {
			continue
		}
		o := connOptions(spec, int64(spec.Index)*131+int64(j))
		o.OnConnect = func(c *netx.Conn) { c.Send(MTHello, hello) }
		o.OnMessage = h.onCtrlMessage(j)
		h.ctrl[j] = netx.Dial(spec.CtrlAddrs[j], o)
	}
	for g := range h.hosts {
		if g == spec.Index || g >= len(spec.HostAddrs) || spec.HostAddrs[g] == "" {
			continue
		}
		h.hosts[g] = netx.Dial(spec.HostAddrs[g], connOptions(spec, int64(spec.Index)*151+int64(g)))
	}
	return h
}

func (h *hostNode) carries(pe int) bool {
	for k := 0; k < h.spec.Top.Replicas; k++ {
		if h.spec.Top.HostOf(pe, k) == h.spec.Index {
			return true
		}
	}
	return false
}

// onCtrlMessage handles frames arriving on the connection to controller
// j — activation commands, answered with acks on the same link.
func (h *hostNode) onCtrlMessage(j int) func(typ byte, payload []byte) {
	return func(typ byte, payload []byte) {
		if typ != MTCommand {
			return
		}
		var cmd CommandMsg
		if decode(payload, &cmd) != nil {
			return
		}
		h.mu.Lock()
		sl, ok := h.slots[[2]int{cmd.PE, cmd.K}]
		if !ok {
			h.mu.Unlock()
			return // not our slot: a misrouted command is dropped, not acked
		}
		ack := AckMsg{Epoch: cmd.Epoch, Seq: cmd.Seq, PE: cmd.PE, K: cmd.K}
		switch sl.proxy.Admit(cmd.Epoch, cmd.Seq) {
		case controlplane.CmdApplied:
			sl.active = cmd.Active
			ack.Applied = true
		case controlplane.CmdDuplicate:
			ack.Applied = true // re-ack without re-applying
		case controlplane.CmdStale:
			ack.Applied = false
			ack.Adopted = sl.proxy.Epoch
		}
		conn := h.ctrl[j]
		h.mu.Unlock()
		if conn != nil {
			conn.Send(MTAck, encode(ack))
		}
	}
}

// handle processes server frames: tuples from the gateway and from
// upstream hosts.
func (h *hostNode) handle(p *netx.Peer, typ byte, payload []byte) {
	switch typ {
	case MTHello:
		// Data-plane dialers (gateway, upstream hosts) introduce
		// themselves too; nothing to track yet.
	case MTTuple:
		var t Tuple
		if decode(payload, &t) != nil {
			return
		}
		h.deliver(t.PE, t.ID)
	}
}

// deliver offers one tuple to the local replicas of stage pe and, when
// any active replica processed it, forwards it to the hosts carrying the
// next stage. Replicas deduplicate by tuple ID (IDs are monotone), so
// redundant deliveries from multiple active upstream replicas do not
// inflate the processed counters.
func (h *hostNode) deliver(pe int, id uint64) {
	if pe < 0 || pe >= h.spec.Top.PEs {
		return
	}
	h.mu.Lock()
	processedAny := false
	for k := 0; k < h.spec.Top.Replicas; k++ {
		sl, ok := h.slots[[2]int{pe, k}]
		if !ok || !sl.active || id <= sl.lastID {
			continue
		}
		sl.lastID = id
		sl.processed++
		processedAny = true
	}
	targets := h.downstream[pe]
	h.mu.Unlock()
	if !processedAny {
		return
	}
	msg := encode(Tuple{PE: pe + 1, ID: id})
	for _, g := range targets {
		if g == h.spec.Index {
			h.deliver(pe+1, id) // next stage lives here too
			continue
		}
		if c := h.hosts[g]; c != nil {
			c.Send(MTTuple, msg)
		}
	}
}

// tick heartbeats every controller with the host's slot states.
func (h *hostNode) tick(time.Time) {
	b := encode(Beat{Host: h.spec.Index, Incarnation: h.spec.Incarnation, Slots: h.slotStates()})
	for _, c := range h.ctrl {
		if c != nil {
			c.Send(MTBeat, b)
		}
	}
}

func (h *hostNode) slotStates() []SlotState {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []SlotState
	h.spec.Top.Slots(h.spec.Index, func(pe, k int) {
		sl := h.slots[[2]int{pe, k}]
		out = append(out, SlotState{
			PE: pe, K: k,
			Active:     sl.active,
			ProxyEpoch: sl.proxy.Epoch,
			ProxySeq:   sl.proxy.Seq,
			Processed:  sl.processed,
		})
	})
	return out
}

func (h *hostNode) stats() StatsResp {
	var dials, drops int64
	for _, c := range h.ctrl {
		if c != nil {
			s := c.Stats()
			dials += s.Dials
			drops += s.Drops
		}
	}
	return StatsResp{Host: &HostStats{
		Host:        h.spec.Index,
		Incarnation: h.spec.Incarnation,
		Dials:       dials,
		Drops:       drops,
		Slots:       h.slotStates(),
	}}
}

func (h *hostNode) close() {
	for _, c := range h.ctrl {
		if c != nil {
			c.Close()
		}
	}
	for _, c := range h.hosts {
		if c != nil {
			c.Close()
		}
	}
}

package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os/exec"
	"strings"
	"sync"
	"time"

	"laar/internal/netx"
)

// addrLinePrefix is the line a child node prints once it is listening;
// the supervisor scrapes the address off it.
const addrLinePrefix = "LAARCLUSTER_ADDR "

// Supervisor runs a cluster as separate OS processes: it spawns one
// child per node, wires every inter-node link through a fault fabric,
// applies chaos schedules (process kills and restarts, link cuts, loss,
// delay), and polls stats for the run-level invariants.
//
// The child protocol is deliberately primitive: the supervisor writes
// one JSON NodeSpec to the child's stdin, the child prints
// "LAARCLUSTER_ADDR <addr>" once listening, and stdin EOF tells the
// child to shut down. Children that vanish without ceremony (EvKill) are
// simply respawned with a higher incarnation.
type Supervisor struct {
	Top        Topology
	TickMs     int
	LeaseTTLMs int
	// Command is the argv prefix that execs one child node, typically
	// [self, "-node"]; the spec arrives on stdin.
	Command []string
	// Logf receives child output and supervisor progress; nil discards.
	Logf func(format string, args ...any)
	// Seed drives the fault fabric's loss draws.
	Seed int64

	fabric *Fabric
	mu     sync.Mutex
	procs  map[string]*nodeProc
	addrs  map[string]string
	incs   map[string]uint64
	floor  uint64
	polls  []Poll
	began  time.Time
}

type nodeProc struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
}

func (s *Supervisor) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Start builds the fault fabric and spawns every node process.
func (s *Supervisor) Start() error {
	if err := s.Top.Validate(); err != nil {
		return err
	}
	if len(s.Command) == 0 {
		return fmt.Errorf("cluster: supervisor needs a child command")
	}
	s.procs = make(map[string]*nodeProc)
	s.addrs = make(map[string]string)
	s.incs = make(map[string]uint64)
	s.began = time.Now()
	fabric, err := BuildFabric(s.Top, s.AddrOf, s.Seed)
	if err != nil {
		return err
	}
	s.fabric = fabric
	for j := 0; j < s.Top.Controllers; j++ {
		if err := s.spawn("controller", j); err != nil {
			return err
		}
	}
	for h := 0; h < s.Top.Hosts; h++ {
		if err := s.spawn("host", h); err != nil {
			return err
		}
	}
	return s.spawn("gateway", 0)
}

// AddrOf resolves a node's current real address — the fabric consults it
// for every relayed connection, so restarts (new ports) are transparent.
func (s *Supervisor) AddrOf(kind string, index int) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	addr := s.addrs[nodeName(kind, index)]
	if addr == "" {
		return "", fmt.Errorf("cluster: %s is down", nodeName(kind, index))
	}
	return addr, nil
}

// spawn execs one child node and waits for its address line.
func (s *Supervisor) spawn(kind string, index int) error {
	name := nodeName(kind, index)
	s.mu.Lock()
	if s.procs[name] != nil {
		s.mu.Unlock()
		return fmt.Errorf("cluster: %s is already running", name)
	}
	s.incs[name]++
	spec := s.fabric.SpecFor(kind, index, s.Top, s.TickMs, s.LeaseTTLMs)
	spec.Incarnation = s.incs[name]
	spec.BallotFloor = s.floor
	s.mu.Unlock()

	cmd := exec.Command(s.Command[0], s.Command[1:]...)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("cluster: spawn %s: %w", name, err)
	}
	go s.forward(name+"!", stderr)
	specJSON, err := json.Marshal(spec)
	if err != nil {
		cmd.Process.Kill()
		cmd.Wait()
		return err
	}
	if _, err := stdin.Write(append(specJSON, '\n')); err != nil {
		cmd.Process.Kill()
		cmd.Wait()
		return fmt.Errorf("cluster: feed spec to %s: %w", name, err)
	}

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if addr, ok := strings.CutPrefix(line, addrLinePrefix); ok {
				select {
				case addrCh <- strings.TrimSpace(addr):
					continue
				default:
				}
			}
			s.logf("%s: %s", name, line)
		}
	}()
	select {
	case addr := <-addrCh:
		s.mu.Lock()
		s.procs[name] = &nodeProc{cmd: cmd, stdin: stdin}
		s.addrs[name] = addr
		s.mu.Unlock()
		s.logf("spawned %s (incarnation %d) at %s", name, spec.Incarnation, addr)
		return nil
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		return fmt.Errorf("cluster: %s never reported its address", name)
	}
}

func (s *Supervisor) forward(tag string, r io.Reader) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		s.logf("%s %s", tag, sc.Text())
	}
}

// Kill terminates a node process without ceremony (SIGKILL).
func (s *Supervisor) Kill(name string) error {
	s.mu.Lock()
	p := s.procs[name]
	delete(s.procs, name)
	delete(s.addrs, name)
	s.mu.Unlock()
	if p == nil {
		return fmt.Errorf("cluster: %s is not running", name)
	}
	p.cmd.Process.Kill()
	p.cmd.Wait()
	s.logf("killed %s", name)
	return nil
}

// Restart respawns a previously killed node with a bumped incarnation
// and the current ballot floor.
func (s *Supervisor) Restart(name string) error {
	kind, index, err := parseNodeName(name)
	if err != nil {
		return err
	}
	return s.spawn(kind, index)
}

// parseNodeName inverts nodeName.
func parseNodeName(name string) (kind string, index int, err error) {
	ep, err := ParseEndpoint(name)
	switch {
	case err != nil:
		return "", 0, err
	case ep == GatewayEndpoint:
		return "gateway", 0, nil
	case ep < 0:
		return "controller", -(ep + 1), nil
	default:
		return "host", ep, nil
	}
}

// Apply executes one chaos event against the processes and the fabric.
func (s *Supervisor) Apply(ev Event) error {
	switch ev.Kind {
	case EvKill:
		return s.Kill(ev.Node)
	case EvRestart:
		return s.Restart(ev.Node)
	case EvCut:
		s.logf("cut %d-%d", ev.A, ev.B)
		return s.fabric.Proxy.Cut(ev.A, ev.B)
	case EvHeal:
		s.logf("heal %d-%d", ev.A, ev.B)
		return s.fabric.Proxy.Heal(ev.A, ev.B)
	case EvLoss:
		s.fabric.Proxy.SetLoss(ev.P)
	case EvLinkLoss:
		s.fabric.Proxy.SetLinkLoss(ev.A, ev.B, ev.P)
	case EvDelay:
		s.fabric.Proxy.SetDelay(ev.D)
	case EvLinkDelay:
		s.fabric.Proxy.SetLinkDelay(ev.A, ev.B, ev.D)
	case EvTarget:
		s.SendTarget(ev.Cfg)
	default:
		return fmt.Errorf("cluster: unknown event kind %d", ev.Kind)
	}
	return nil
}

// SendTarget pushes a target-configuration switch to every responsive
// controller (directly, not through the fabric — it is an operator
// action, not cluster traffic).
func (s *Supervisor) SendTarget(cfg int) {
	for j := 0; j < s.Top.Controllers; j++ {
		addr, err := s.AddrOf("controller", j)
		if err != nil {
			continue
		}
		sendOnce(addr, MTTarget, encode(Target{Cfg: cfg}))
	}
}

// Poll sweeps every node's stats, records the poll, and lifts the ballot
// floor to the highest epoch observed — the floor a restarted controller
// is seeded with.
func (s *Supervisor) Poll() Poll {
	p := Poll{At: time.Since(s.began)}
	p.Ctrls = make([]*CtrlStats, s.Top.Controllers)
	p.Hosts = make([]*HostStats, s.Top.Hosts)
	const timeout = time.Second
	for j := 0; j < s.Top.Controllers; j++ {
		if addr, err := s.AddrOf("controller", j); err == nil {
			if r, err := QueryStats(addr, timeout); err == nil && r.Ctrl != nil {
				p.Ctrls[j] = r.Ctrl
			}
		}
	}
	for h := 0; h < s.Top.Hosts; h++ {
		if addr, err := s.AddrOf("host", h); err == nil {
			if r, err := QueryStats(addr, timeout); err == nil && r.Host != nil {
				p.Hosts[h] = r.Host
			}
		}
	}
	if addr, err := s.AddrOf("gateway", 0); err == nil {
		if r, err := QueryStats(addr, timeout); err == nil && r.Gateway != nil {
			p.Gateway = r.Gateway
		}
	}
	s.mu.Lock()
	for _, c := range p.Ctrls {
		if c != nil {
			if c.MaxSeen > s.floor {
				s.floor = c.MaxSeen
			}
			if c.Epoch > s.floor {
				s.floor = c.Epoch
			}
		}
	}
	s.polls = append(s.polls, p)
	s.mu.Unlock()
	return p
}

// Run replays a schedule over total wall time, polling stats every
// pollEvery, and returns the report. Event application errors abort the
// run — a schedule that fails to apply is a broken experiment, not a
// finding.
func (s *Supervisor) Run(sched Schedule, total, pollEvery time.Duration) (*RunReport, error) {
	start := time.Now()
	next := 0
	for {
		now := time.Since(start)
		for next < len(sched) && sched[next].At <= now {
			if err := s.Apply(sched[next]); err != nil {
				return nil, fmt.Errorf("cluster: apply %v: %w", sched[next], err)
			}
			next++
		}
		if now >= total {
			break
		}
		sleep := pollEvery
		if next < len(sched) && sched[next].At-now < sleep {
			sleep = sched[next].At - now
		}
		if rest := total - now; rest < sleep {
			sleep = rest
		}
		time.Sleep(sleep)
		// Poll after the sleep, never back-to-back: the progress
		// invariants compare the final two polls, which must be a real
		// interval apart for counters to be able to move between them.
		s.Poll()
	}
	return s.Report(), nil
}

// Report returns the polls collected so far.
func (s *Supervisor) Report() *RunReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &RunReport{Top: s.Top, Polls: append([]Poll(nil), s.polls...)}
}

// Shutdown stops every child (stdin EOF, then kill after a grace
// period) and tears the fabric down.
func (s *Supervisor) Shutdown() {
	s.mu.Lock()
	procs := s.procs
	s.procs = make(map[string]*nodeProc)
	s.addrs = make(map[string]string)
	s.mu.Unlock()
	var wg sync.WaitGroup
	for name, p := range procs {
		wg.Add(1)
		go func(name string, p *nodeProc) {
			defer wg.Done()
			p.stdin.Close() // EOF: the child stops itself
			done := make(chan struct{})
			go func() { p.cmd.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(3 * time.Second):
				p.cmd.Process.Kill()
				<-done
			}
		}(name, p)
	}
	wg.Wait()
	if s.fabric != nil {
		s.fabric.Close()
	}
}

// QueryStats asks one node (by real address) for its stats snapshot.
func QueryStats(addr string, timeout time.Duration) (StatsResp, error) {
	var resp StatsResp
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return resp, err
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(timeout))
	if err := netx.WriteFrame(nc, MTStatsReq, nil); err != nil {
		return resp, err
	}
	fr := netx.NewFrameReader(nc, 0)
	for {
		typ, payload, err := fr.Next()
		if err != nil {
			return resp, err
		}
		if typ != MTStatsResp {
			continue
		}
		return resp, decode(payload, &resp)
	}
}

// sendOnce dials a real address, writes one frame, and hangs up.
func sendOnce(addr string, typ byte, payload []byte) error {
	nc, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return err
	}
	defer nc.Close()
	nc.SetWriteDeadline(time.Now().Add(time.Second))
	return netx.WriteFrame(nc, typ, payload)
}

// RunChild is the body of a child node process: read the spec from
// stdin, start the node, report its address, and run until stdin closes.
// cmd/laarcluster calls it in -node mode.
func RunChild(stdin io.Reader, stdout io.Writer) error {
	dec := json.NewDecoder(stdin)
	var spec NodeSpec
	if err := dec.Decode(&spec); err != nil {
		return fmt.Errorf("cluster: read node spec: %w", err)
	}
	n, err := StartNode(spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s%s\n", addrLinePrefix, n.Addr())
	// Block until the supervisor hangs up (or dies — either way, EOF).
	io.Copy(io.Discard, dec.Buffered())
	io.Copy(io.Discard, stdin)
	n.Stop()
	return nil
}

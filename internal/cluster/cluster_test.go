package cluster

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// testCluster runs a full topology in-process: real TCP between nodes,
// every link through the fault fabric, but no child processes — the
// supervisor's exec path is exercised by cmd/laarcluster.
type testCluster struct {
	t      *testing.T
	top    Topology
	fabric *Fabric

	mu    sync.Mutex
	nodes map[string]*Node
	incs  map[string]uint64
	floor uint64
	polls []Poll
}

const (
	testTickMs = 10
	testTTLMs  = 80
)

func startCluster(t *testing.T, top Topology) *testCluster {
	t.Helper()
	tc := &testCluster{
		t:     t,
		top:   top,
		nodes: make(map[string]*Node),
		incs:  make(map[string]uint64),
	}
	fabric, err := BuildFabric(top, tc.resolve, 1)
	if err != nil {
		t.Fatal(err)
	}
	tc.fabric = fabric
	t.Cleanup(tc.close)
	for j := 0; j < top.Controllers; j++ {
		tc.spawn("controller", j)
	}
	for h := 0; h < top.Hosts; h++ {
		tc.spawn("host", h)
	}
	tc.spawn("gateway", 0)
	return tc
}

func (tc *testCluster) resolve(kind string, index int) (string, error) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	n := tc.nodes[nodeName(kind, index)]
	if n == nil {
		return "", fmt.Errorf("%s down", nodeName(kind, index))
	}
	return n.Addr(), nil
}

func (tc *testCluster) spawn(kind string, index int) {
	tc.t.Helper()
	name := nodeName(kind, index)
	tc.mu.Lock()
	tc.incs[name]++
	spec := tc.fabric.SpecFor(kind, index, tc.top, testTickMs, testTTLMs)
	spec.Incarnation = tc.incs[name]
	spec.BallotFloor = tc.floor
	tc.mu.Unlock()
	n, err := StartNode(spec)
	if err != nil {
		tc.t.Fatalf("start %s: %v", name, err)
	}
	tc.mu.Lock()
	tc.nodes[name] = n
	tc.mu.Unlock()
}

func (tc *testCluster) stopNode(name string) {
	tc.mu.Lock()
	n := tc.nodes[name]
	delete(tc.nodes, name)
	tc.mu.Unlock()
	if n != nil {
		n.Stop()
	}
}

// poll sweeps every node's stats in-process and records the poll (so a
// test can finish with CheckAll over its whole history).
func (tc *testCluster) poll() Poll {
	p := Poll{At: time.Duration(len(tc.polls)) /* ordinal, not wall time */}
	p.Ctrls = make([]*CtrlStats, tc.top.Controllers)
	p.Hosts = make([]*HostStats, tc.top.Hosts)
	tc.mu.Lock()
	nodes := make(map[string]*Node, len(tc.nodes))
	for k, v := range tc.nodes {
		nodes[k] = v
	}
	tc.mu.Unlock()
	for j := 0; j < tc.top.Controllers; j++ {
		if n := nodes[nodeName("controller", j)]; n != nil {
			p.Ctrls[j] = n.Stats().Ctrl
		}
	}
	for h := 0; h < tc.top.Hosts; h++ {
		if n := nodes[nodeName("host", h)]; n != nil {
			p.Hosts[h] = n.Stats().Host
		}
	}
	if n := nodes["gw"]; n != nil {
		p.Gateway = n.Stats().Gateway
	}
	tc.mu.Lock()
	for _, c := range p.Ctrls {
		if c != nil && c.MaxSeen > tc.floor {
			tc.floor = c.MaxSeen
		}
	}
	tc.polls = append(tc.polls, p)
	tc.mu.Unlock()
	return p
}

// waitFor polls until cond accepts a poll, failing after 15 s.
func (tc *testCluster) waitFor(what string, cond func(p Poll) bool) Poll {
	tc.t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		p := tc.poll()
		if cond(p) {
			return p
		}
		if time.Now().After(deadline) {
			tc.t.Fatalf("timed out waiting for %s; last poll: %+v", what, p)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func (tc *testCluster) close() {
	tc.mu.Lock()
	nodes := tc.nodes
	tc.nodes = make(map[string]*Node)
	tc.mu.Unlock()
	for _, n := range nodes {
		n.Stop()
	}
	tc.fabric.Close()
}

// converged accepts a poll where controller j leads with nothing pending
// and every slot has adopted its epoch and the target activation.
func converged(top Topology, leader int) func(p Poll) bool {
	return func(p Poll) bool {
		c := p.Ctrls[leader]
		if c == nil || !c.Leading || c.Pending != 0 {
			return false
		}
		for _, h := range p.Hosts {
			if h == nil {
				return false
			}
			for _, sl := range h.Slots {
				if sl.ProxyEpoch != c.Epoch || sl.Active != WantActive(c.Cfg, sl.K) {
					return false
				}
			}
		}
		return true
	}
}

// slotOf finds one slot's state in a poll.
func slotOf(p Poll, top Topology, pe, k int) *SlotState {
	h := p.Hosts[top.HostOf(pe, k)]
	if h == nil {
		return nil
	}
	for i := range h.Slots {
		if h.Slots[i].PE == pe && h.Slots[i].K == k {
			return &h.Slots[i]
		}
	}
	return nil
}

// TestClusterConvergesAndFailsOver is the core distributed scenario:
// boot, converge under ctrl0, deliver end to end, kill ctrl0 (ctrl1
// takes the lease), restart ctrl0 (it reclaims above everything seen),
// and end with zero run-level invariant violations.
func TestClusterConvergesAndFailsOver(t *testing.T) {
	top := Topology{Hosts: 2, Controllers: 2, PEs: 2, Replicas: 2}
	tc := startCluster(t, top)

	first := tc.waitFor("initial convergence under ctrl0", converged(top, 0))
	epoch0 := first.Ctrls[0].Epoch

	// Tuples flow through to the sink stage.
	tc.waitFor("sink delivery", func(p Poll) bool {
		sl := slotOf(p, top, top.PEs-1, 0)
		return sl != nil && sl.Processed > 0
	})

	// Kill the leader: the next controller claims a higher ballot and
	// reconverges every slot under it.
	tc.stopNode("ctrl0")
	after := tc.waitFor("failover to ctrl1", converged(top, 1))
	epoch1 := after.Ctrls[1].Epoch
	if epoch1 <= epoch0 {
		t.Fatalf("ctrl1 claimed epoch %d, not above ctrl0's %d", epoch1, epoch0)
	}

	// Bring ctrl0 back (new incarnation, ballot floor from the polls):
	// lowest id wins the lease back, above everything ever claimed.
	tc.spawn("controller", 0)
	final := tc.waitFor("ctrl0 reclaims", converged(top, 0))
	if got := final.Ctrls[0].Epoch; got <= epoch1 {
		t.Fatalf("restarted ctrl0 claimed epoch %d, not above ctrl1's %d", got, epoch1)
	}

	// Delivery resumed: take two more spaced polls for the progress
	// invariant, then judge the full history.
	time.Sleep(100 * time.Millisecond)
	tc.poll()
	time.Sleep(100 * time.Millisecond)
	tc.poll()
	report := &RunReport{Top: top, Polls: tc.polls}
	if vs := CheckAll(report); len(vs) != 0 {
		t.Fatalf("invariant violations: %v", vs)
	}
}

// TestClusterHostRestartReissuesCommands covers the incarnation path: a
// restarted host process lost its proxy state, and the leader must
// reset those slots (ResetSlot) and re-establish them rather than trust
// acks granted to the dead process.
func TestClusterHostRestartReissuesCommands(t *testing.T) {
	top := Topology{Hosts: 2, Controllers: 1, PEs: 1, Replicas: 2}
	tc := startCluster(t, top)

	tc.waitFor("initial convergence", converged(top, 0))

	// Switch to configuration 0: replica (0,1) on host1 deactivates.
	if err := sendOnce(tc.nodes["ctrl0"].Addr(), MTTarget, encode(Target{Cfg: 0})); err != nil {
		t.Fatal(err)
	}
	tc.waitFor("target 0 applied", func(p Poll) bool {
		sl := slotOf(p, top, 0, 1)
		return converged(top, 0)(p) && sl != nil && !sl.Active
	})

	// Restart host1: fresh process, fresh (empty) proxy state, higher
	// incarnation. The leader must drive its slot back to the target.
	tc.stopNode("host1")
	tc.spawn("host", 1)
	final := tc.waitFor("host1 re-established", func(p Poll) bool {
		h := p.Hosts[1]
		return h != nil && h.Incarnation == 2 && converged(top, 0)(p)
	})
	sl := slotOf(final, top, 0, 1)
	if sl.Active {
		t.Fatal("restarted host1 slot ended active; target 0 wants it inactive")
	}
	if sl.ProxyEpoch != final.Ctrls[0].Epoch {
		t.Fatalf("restarted slot proxy epoch %d, leader epoch %d", sl.ProxyEpoch, final.Ctrls[0].Epoch)
	}
}

// TestClusterReconnectPreservesAckedCommands is the acceptance reconnect
// scenario: sever a live host↔controller TCP link, flip the target while
// it is down (the command cannot be delivered), then heal. The dialer
// must redial on the capped backoff schedule — a bounded handful of
// attempts, not a storm — and after the heal the undeliverable command
// lands while every command acked before the cut stays exactly as acked
// (same proxy sequence numbers, no re-delivery).
func TestClusterReconnectPreservesAckedCommands(t *testing.T) {
	top := Topology{Hosts: 2, Controllers: 1, PEs: 2, Replicas: 2}
	tc := startCluster(t, top)

	before := tc.waitFor("initial convergence", converged(top, 0))
	// Slot (1,1) lives on host0 ((1+1)%2) and is active under cfg 1.
	pre11 := *slotOf(before, top, 1, 1)
	pre00 := *slotOf(before, top, 0, 0)
	if !pre11.Active {
		t.Fatal("slot (1,1) should be active under the all-active target")
	}
	drops0 := before.Hosts[0].Drops

	// Sever host0 ↔ ctrl0 and flip the target: slot (1,1) must
	// deactivate, but its host is unreachable.
	if err := tc.fabric.Proxy.Cut(0, ControllerEndpoint(0)); err != nil {
		t.Fatal(err)
	}
	if err := sendOnce(tc.nodes["ctrl0"].Addr(), MTTarget, encode(Target{Cfg: 0})); err != nil {
		t.Fatal(err)
	}

	// host1's slot (0,1) converges (its link is whole); host0's slot
	// (1,1) cannot — the command retries behind the cut.
	mid := tc.waitFor("host1 side converges during cut", func(p Poll) bool {
		sl := slotOf(p, top, 0, 1)
		c := p.Ctrls[0]
		return sl != nil && !sl.Active && c != nil && c.Pending > 0
	})
	if sl := slotOf(mid, top, 1, 1); sl == nil || !sl.Active {
		t.Fatal("slot (1,1) flipped while its controller link was cut")
	}

	// Hold the cut long enough for several redial attempts.
	time.Sleep(600 * time.Millisecond)
	during := tc.poll()
	dropsDuring := during.Hosts[0].Drops - drops0
	if dropsDuring < 2 {
		t.Fatalf("expected several redial attempts during the cut, saw %d drops", dropsDuring)
	}
	if dropsDuring > 40 {
		t.Fatalf("reconnect storm: %d connection drops during a 600ms cut (backoff not capping)", dropsDuring)
	}

	// Heal: the host redials, the pending command lands, and the slots
	// acked before the cut are untouched (same proxy sequence — the
	// sequencer remembered their acks across the reconnect).
	if err := tc.fabric.Proxy.Heal(0, ControllerEndpoint(0)); err != nil {
		t.Fatal(err)
	}
	final := tc.waitFor("reconverged after heal", converged(top, 0))
	post11 := slotOf(final, top, 1, 1)
	if post11.Active {
		t.Fatal("slot (1,1) still active after heal; the pending command was lost")
	}
	if post11.ProxyEpoch != pre11.ProxyEpoch {
		t.Fatalf("leader changed across the cut (epoch %d → %d); test expects a stable leader", pre11.ProxyEpoch, post11.ProxyEpoch)
	}
	post00 := slotOf(final, top, 0, 0)
	if *post00 != pre00 {
		if post00.ProxySeq != pre00.ProxySeq || post00.Active != pre00.Active {
			t.Fatalf("slot (0,0) acked before the cut changed across reconnect: %+v → %+v", pre00, *post00)
		}
	}
}

func TestParseSchedule(t *testing.T) {
	s, err := ParseSchedule("800ms cut host0 ctrl1; 500ms kill ctrl0; 1600ms heal host0 ctrl1; 2s restart ctrl0; 1s loss 0.3; 1200ms delay gw host0 5ms; 900ms target 0")
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 7 {
		t.Fatalf("parsed %d events, want 7", len(s))
	}
	// Sorted by time.
	for i := 1; i < len(s); i++ {
		if s[i].At < s[i-1].At {
			t.Fatalf("schedule not sorted: %v", s)
		}
	}
	if s[0].Kind != EvKill || s[0].Node != "ctrl0" || s[0].At != 500*time.Millisecond {
		t.Fatalf("first event = %+v, want kill ctrl0 at 500ms", s[0])
	}
	if s[1].Kind != EvCut || s[1].A != 0 || s[1].B != ControllerEndpoint(1) {
		t.Fatalf("cut event = %+v", s[1])
	}
	if s[2].Kind != EvTarget || s[2].Cfg != 0 {
		t.Fatalf("target event = %+v", s[2])
	}
	if s[4].Kind != EvLinkDelay || s[4].A != GatewayEndpoint || s[4].D != 5*time.Millisecond {
		t.Fatalf("delay event = %+v", s[4])
	}

	for _, bad := range []string{
		"500ms explode ctrl0",
		"nonsense kill ctrl0",
		"500ms kill gw",
		"500ms cut host0",
		"500ms loss 1.5",
		"500ms kill frobnicator0",
	} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) accepted", bad)
		}
	}
	if len(DefaultSchedule()) == 0 {
		t.Fatal("DefaultSchedule is empty")
	}
}

// TestInvariantsCatchViolations feeds the registry synthetic reports
// that each breach one invariant.
func TestInvariantsCatchViolations(t *testing.T) {
	top := Topology{Hosts: 1, Controllers: 2, PEs: 1, Replicas: 1}
	clean := func() *RunReport {
		mk := func(sent, processed uint64) Poll {
			return Poll{
				Ctrls: []*CtrlStats{
					{ID: 0, Leading: true, Epoch: 256, MaxSeen: 256, Cfg: 1},
					{ID: 1, Leading: false, Epoch: 0, MaxSeen: 256},
				},
				Hosts: []*HostStats{
					{Host: 0, Slots: []SlotState{{PE: 0, K: 0, Active: true, ProxyEpoch: 256, ProxySeq: 1, Processed: processed}}},
				},
				Gateway: &GatewayStats{Sent: sent},
			}
		}
		return &RunReport{Top: top, Polls: []Poll{mk(10, 5), mk(20, 12)}}
	}
	if vs := CheckAll(clean()); len(vs) != 0 {
		t.Fatalf("clean report flagged: %v", vs)
	}

	cases := []struct {
		name   string
		mutate func(r *RunReport)
	}{
		{"nodes-responsive", func(r *RunReport) { r.Polls[1].Hosts[0] = nil }},
		{"leader-unique-lowest", func(r *RunReport) { r.Polls[1].Ctrls[1].Leading = true }},
		{"ballot-holder", func(r *RunReport) { r.Polls[1].Ctrls[0].Epoch = 257 }}, // holder id 1
		{"lease-epochs-monotone", func(r *RunReport) { r.Polls[0].Ctrls[0].Epoch = 512 }},
		{"commands-converged", func(r *RunReport) { r.Polls[1].Ctrls[0].Pending = 3 }},
		{"activation-matches-target", func(r *RunReport) { r.Polls[1].Hosts[0].Slots[0].Active = false }},
		{"proxy-converged", func(r *RunReport) { r.Polls[1].Hosts[0].Slots[0].ProxyEpoch = 128 }},
		{"delivery-resumed", func(r *RunReport) { r.Polls[1].Hosts[0].Slots[0].Processed = 5 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := clean()
			c.mutate(r)
			vs := CheckAll(r)
			found := false
			for _, v := range vs {
				if v.Invariant == c.name {
					found = true
				}
			}
			if !found {
				t.Fatalf("mutation not caught by %s; violations: %v", c.name, vs)
			}
		})
	}
}

// TestRunChildProtocol drives the supervisor↔child handshake without a
// process: spec on stdin, address line on stdout, stats over TCP, stdin
// EOF for shutdown.
func TestRunChildProtocol(t *testing.T) {
	top := Topology{Hosts: 1, Controllers: 1, PEs: 1, Replicas: 1}
	spec := NodeSpec{Kind: "gateway", Top: top, Incarnation: 1, TickMs: 10}

	stdinR, stdinW := io.Pipe()
	stdoutR, stdoutW := io.Pipe()
	done := make(chan error, 1)
	go func() { done <- RunChild(stdinR, stdoutW) }()
	go func() {
		stdinW.Write(append(encode(spec), '\n'))
	}()

	line := make([]byte, 256)
	n, err := stdoutR.Read(line)
	if err != nil {
		t.Fatal(err)
	}
	out := strings.TrimSpace(string(line[:n]))
	addr, ok := strings.CutPrefix(out, addrLinePrefix)
	if !ok {
		t.Fatalf("child printed %q, want an address line", out)
	}
	resp, err := QueryStats(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Gateway == nil {
		t.Fatalf("stats = %+v, want gateway stats", resp)
	}

	stdinW.Close() // EOF: the child must stop and return
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("RunChild returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("child did not stop on stdin EOF")
	}
}

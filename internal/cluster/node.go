package cluster

import (
	"fmt"
	"sync"
	"time"

	"laar/internal/netx"
)

// nodeImpl is the kind-specific half of a node: the controller, host and
// gateway implement it over the shared serve/tick/stats plumbing.
type nodeImpl interface {
	// handle processes one inbound server frame.
	handle(p *netx.Peer, typ byte, payload []byte)
	// tick advances the node's control loop.
	tick(now time.Time)
	// stats snapshots the node for the supervisor's polls.
	stats() StatsResp
	// close releases the impl's dialed connections.
	close()
}

// Node is one running cluster node (any kind). Tests run several Nodes
// in-process; cmd/laarcluster runs exactly one per child process.
type Node struct {
	spec NodeSpec
	srv  *netx.Server
	impl nodeImpl

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// StartNode validates the spec, starts the node's server and control
// loop, and returns. The node runs until Stop.
func StartNode(spec NodeSpec) (*Node, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n := &Node{spec: spec, stop: make(chan struct{}), done: make(chan struct{})}

	var impl nodeImpl
	switch spec.Kind {
	case "controller":
		impl = newCtrlNode(spec)
	case "host":
		impl = newHostNode(spec)
	case "gateway":
		impl = newGatewayNode(spec)
	}
	n.impl = impl

	tick := time.Duration(spec.TickMs) * time.Millisecond
	srv, err := netx.Serve(spec.ListenAddr, netx.ServerOptions{
		// A peer that goes fully silent for many ticks is gone; its
		// dialer redials through the fabric when the link allows.
		IdleTimeout: 20 * tick,
		Handler: func(p *netx.Peer, typ byte, payload []byte) {
			if typ == MTStatsReq {
				p.Send(MTStatsResp, encode(impl.stats()))
				return
			}
			impl.handle(p, typ, payload)
		},
		OnDisconnect: func(p *netx.Peer) {
			if c, ok := impl.(*ctrlNode); ok {
				c.peerGone(p)
			}
		},
	})
	if err != nil {
		impl.close()
		return nil, err
	}
	n.srv = srv

	go n.run(tick)
	return n, nil
}

// Addr returns the node's real listen address (the one behind the fault
// fabric).
func (n *Node) Addr() string { return n.srv.Addr() }

// Spec returns the node's (defaulted) spec.
func (n *Node) Spec() NodeSpec { return n.spec }

// Stats snapshots the node directly (in-process callers; remote callers
// use MTStatsReq).
func (n *Node) Stats() StatsResp { return n.impl.stats() }

// Stop shuts the node down: control loop, server, dialed connections.
func (n *Node) Stop() {
	n.stopOnce.Do(func() { close(n.stop) })
	<-n.done
}

func (n *Node) run(tick time.Duration) {
	defer close(n.done)
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			n.srv.Close()
			n.impl.close()
			return
		case now := <-t.C:
			n.impl.tick(now)
		}
	}
}

// connOptions are the dial settings every inter-node connection uses:
// keepalive at twice the tick, redial backoff from one tick up to eight,
// jittered so many dialers severed by one cut do not redial in lockstep.
func connOptions(spec NodeSpec, seed int64) netx.ConnOptions {
	tick := time.Duration(spec.TickMs) * time.Millisecond
	return netx.ConnOptions{
		PingEvery: 2 * tick,
		Backoff:   netx.BackoffPolicy{Min: tick, Max: 8 * tick, Jitter: 0.2},
		Seed:      seed,
	}
}

// nodeName renders a node identity for logs and schedules: "ctrl1",
// "host0", "gw".
func nodeName(kind string, index int) string {
	switch kind {
	case "gateway":
		return "gw"
	case "controller":
		return fmt.Sprintf("ctrl%d", index)
	default:
		return fmt.Sprintf("%s%d", kind, index)
	}
}

package cluster

import (
	"fmt"
	"time"

	"laar/internal/controlplane"
)

// Poll is one stats sweep over the cluster: what every node reported at
// one instant. A nil entry means the node did not answer (dead, still
// restarting, or unreachable).
type Poll struct {
	At      time.Duration
	Ctrls   []*CtrlStats
	Hosts   []*HostStats
	Gateway *GatewayStats
}

// RunReport is what a chaos run leaves behind: the topology, and the
// time series of polls. The run-level invariants judge it after the
// schedule has drained and the cluster has had time to settle.
type RunReport struct {
	Top   Topology
	Polls []Poll
}

// Violation is one invariant breach found in a run report.
type Violation struct {
	Invariant string
	Detail    string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// Invariant is one run-level check.
type Invariant struct {
	Name  string
	Doc   string
	Check func(r *RunReport) []Violation
}

// final returns the last poll, or nil when the report is empty.
func (r *RunReport) final() *Poll {
	if len(r.Polls) == 0 {
		return nil
	}
	return &r.Polls[len(r.Polls)-1]
}

// finalLeader returns the last poll's unique leading controller, or nil.
func (r *RunReport) finalLeader() *CtrlStats {
	p := r.final()
	if p == nil {
		return nil
	}
	var leader *CtrlStats
	for _, c := range p.Ctrls {
		if c != nil && c.Leading {
			if leader != nil {
				return nil // not unique
			}
			leader = c
		}
	}
	return leader
}

// Registry returns the run-level invariants a healed cluster must
// satisfy once the chaos schedule has drained.
func Registry() []Invariant {
	return []Invariant{
		{
			Name: "nodes-responsive",
			Doc:  "every node answers the final stats poll",
			Check: func(r *RunReport) []Violation {
				p := r.final()
				if p == nil {
					return []Violation{{"nodes-responsive", "no polls collected"}}
				}
				var out []Violation
				for j, c := range p.Ctrls {
					if c == nil {
						out = append(out, Violation{"nodes-responsive", fmt.Sprintf("ctrl%d silent at final poll", j)})
					}
				}
				for h, s := range p.Hosts {
					if s == nil {
						out = append(out, Violation{"nodes-responsive", fmt.Sprintf("host%d silent at final poll", h)})
					}
				}
				if p.Gateway == nil {
					out = append(out, Violation{"nodes-responsive", "gateway silent at final poll"})
				}
				return out
			},
		},
		{
			Name: "leader-unique-lowest",
			Doc:  "exactly one controller leads at the end, and it is the lowest responsive id (the lease rule)",
			Check: func(r *RunReport) []Violation {
				p := r.final()
				if p == nil {
					return nil
				}
				leading := -1
				n := 0
				lowest := -1
				for j, c := range p.Ctrls {
					if c == nil {
						continue
					}
					if lowest == -1 {
						lowest = j
					}
					if c.Leading {
						leading = j
						n++
					}
				}
				switch {
				case n == 0:
					return []Violation{{"leader-unique-lowest", "no controller leading at final poll"}}
				case n > 1:
					return []Violation{{"leader-unique-lowest", fmt.Sprintf("%d controllers leading at final poll", n)}}
				case leading != lowest:
					return []Violation{{"leader-unique-lowest", fmt.Sprintf("ctrl%d leads but ctrl%d is the lowest responsive id", leading, lowest)}}
				}
				return nil
			},
		},
		{
			Name: "ballot-holder",
			Doc:  "every leading controller's epoch encodes its own id (ballots cannot be stolen)",
			Check: func(r *RunReport) []Violation {
				var out []Violation
				for i := range r.Polls {
					for _, c := range r.Polls[i].Ctrls {
						if c != nil && c.Leading && controlplane.BallotHolder(c.Epoch) != c.ID {
							out = append(out, Violation{"ballot-holder",
								fmt.Sprintf("poll %d: ctrl%d leads under epoch %d held by id %d", i, c.ID, c.Epoch, controlplane.BallotHolder(c.Epoch))})
						}
					}
				}
				return out
			},
		},
		{
			Name: "lease-epochs-monotone",
			Doc:  "a controller's leading epochs only move up across the run — a restarted controller must not reclaim an epoch it already held",
			Check: func(r *RunReport) []Violation {
				var out []Violation
				high := map[int]uint64{}
				for i := range r.Polls {
					for _, c := range r.Polls[i].Ctrls {
						if c == nil || !c.Leading {
							continue
						}
						if prev, ok := high[c.ID]; ok && c.Epoch < prev {
							out = append(out, Violation{"lease-epochs-monotone",
								fmt.Sprintf("poll %d: ctrl%d leads under epoch %d after having led under %d", i, c.ID, c.Epoch, prev)})
						}
						if c.Epoch > high[c.ID] {
							high[c.ID] = c.Epoch
						}
					}
				}
				return out
			},
		},
		{
			Name: "commands-converged",
			Doc:  "the final leader has no command in flight — every slot acked the target activation",
			Check: func(r *RunReport) []Violation {
				leader := r.finalLeader()
				if leader == nil {
					return nil // leader-unique-lowest reports this case
				}
				if leader.Pending != 0 {
					return []Violation{{"commands-converged", fmt.Sprintf("final leader ctrl%d has %d commands pending", leader.ID, leader.Pending)}}
				}
				return nil
			},
		},
		{
			Name: "activation-matches-target",
			Doc:  "every replica slot ends in the activation state the target configuration wants",
			Check: func(r *RunReport) []Violation {
				leader := r.finalLeader()
				p := r.final()
				if leader == nil || p == nil {
					return nil
				}
				var out []Violation
				for _, h := range p.Hosts {
					if h == nil {
						continue
					}
					for _, sl := range h.Slots {
						if want := WantActive(leader.Cfg, sl.K); sl.Active != want {
							out = append(out, Violation{"activation-matches-target",
								fmt.Sprintf("host%d slot (%d,%d): active=%v, target cfg %d wants %v", h.Host, sl.PE, sl.K, sl.Active, leader.Cfg, want)})
						}
					}
				}
				return out
			},
		},
		{
			Name: "proxy-converged",
			Doc:  "every replica slot has adopted the final leader's epoch — no slot still obeys a deposed leader",
			Check: func(r *RunReport) []Violation {
				leader := r.finalLeader()
				p := r.final()
				if leader == nil || p == nil {
					return nil
				}
				var out []Violation
				for _, h := range p.Hosts {
					if h == nil {
						continue
					}
					for _, sl := range h.Slots {
						if sl.ProxyEpoch != leader.Epoch {
							out = append(out, Violation{"proxy-converged",
								fmt.Sprintf("host%d slot (%d,%d): proxy epoch %d, leader epoch %d", h.Host, sl.PE, sl.K, sl.ProxyEpoch, leader.Epoch)})
						}
					}
				}
				return out
			},
		},
		{
			Name: "delivery-resumed",
			Doc:  "after the last fault heals, the gateway keeps feeding and the sink stage keeps processing — tuples flow end to end again",
			Check: func(r *RunReport) []Violation {
				if len(r.Polls) < 2 {
					return []Violation{{"delivery-resumed", "need at least two polls to judge progress"}}
				}
				prev, last := &r.Polls[len(r.Polls)-2], &r.Polls[len(r.Polls)-1]
				var out []Violation
				if prev.Gateway != nil && last.Gateway != nil && last.Gateway.Sent <= prev.Gateway.Sent {
					out = append(out, Violation{"delivery-resumed",
						fmt.Sprintf("gateway sent stalled at %d", last.Gateway.Sent)})
				}
				sink := func(p *Poll) (uint64, bool) {
					var total uint64
					seen := false
					for _, h := range p.Hosts {
						if h == nil {
							return 0, false
						}
						for _, sl := range h.Slots {
							if sl.PE == r.Top.PEs-1 {
								total += sl.Processed
								seen = true
							}
						}
					}
					return total, seen
				}
				a, okA := sink(prev)
				b, okB := sink(last)
				switch {
				case !okA || !okB:
					out = append(out, Violation{"delivery-resumed", "sink stage unobservable in the final polls"})
				case b <= a:
					out = append(out, Violation{"delivery-resumed",
						fmt.Sprintf("sink processed stalled at %d across the final polls", b)})
				}
				return out
			},
		},
	}
}

// CheckAll runs every registry invariant over the report.
func CheckAll(r *RunReport) []Violation {
	var out []Violation
	for _, inv := range Registry() {
		out = append(out, inv.Check(r)...)
	}
	return out
}

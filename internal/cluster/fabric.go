package cluster

import (
	"laar/internal/netx"
)

// Fabric is the fault-injectable network between the cluster's nodes:
// one netx.FaultProxy route per directed inter-node link, with stable
// listen addresses the dialing nodes are configured with. Chaos link
// events address routes by the endpoint-pair convention shared with the
// in-process live runtime (hosts ≥ 0, ControllerEndpoint(j) < 0,
// GatewayEndpoint), so a schedule written for one runtime drives the
// other.
type Fabric struct {
	Proxy *netx.FaultProxy

	// HostToCtrl[h][j] is the address host h dials to reach controller
	// j; CtrlToCtrl[i][j] the address controller i dials to reach peer j
	// ("" on the diagonal); HostToHost[g][h] likewise for tuple
	// forwarding; GwToHost[h] the gateway's address for host h.
	HostToCtrl [][]string
	CtrlToCtrl [][]string
	HostToHost [][]string
	GwToHost   []string
}

// Resolver returns the current real address of a node; the supervisor
// backs it with its table of live child processes, in-process tests with
// their node registry. It is consulted on every relayed connection, so a
// node that restarts on a new port is picked up transparently.
type Resolver func(kind string, index int) (string, error)

// BuildFabric creates every route of the topology on a fresh FaultProxy.
func BuildFabric(t Topology, resolve Resolver, seed int64) (*Fabric, error) {
	f := &Fabric{
		Proxy:      netx.NewFaultProxy(seed),
		HostToCtrl: make([][]string, t.Hosts),
		CtrlToCtrl: make([][]string, t.Controllers),
		HostToHost: make([][]string, t.Hosts),
		GwToHost:   make([]string, t.Hosts),
	}
	resolveNode := func(kind string, index int) func() (string, error) {
		return func() (string, error) { return resolve(kind, index) }
	}
	var err error
	add := func(a, b int, kind string, index int) string {
		if err != nil {
			return ""
		}
		var addr string
		addr, err = f.Proxy.AddRoute(a, b, resolveNode(kind, index))
		return addr
	}
	for h := 0; h < t.Hosts; h++ {
		f.HostToCtrl[h] = make([]string, t.Controllers)
		for j := 0; j < t.Controllers; j++ {
			f.HostToCtrl[h][j] = add(h, ControllerEndpoint(j), "controller", j)
		}
	}
	for i := 0; i < t.Controllers; i++ {
		f.CtrlToCtrl[i] = make([]string, t.Controllers)
		for j := 0; j < t.Controllers; j++ {
			if i != j {
				f.CtrlToCtrl[i][j] = add(ControllerEndpoint(i), ControllerEndpoint(j), "controller", j)
			}
		}
	}
	for g := 0; g < t.Hosts; g++ {
		f.HostToHost[g] = make([]string, t.Hosts)
		for h := 0; h < t.Hosts; h++ {
			if g != h {
				f.HostToHost[g][h] = add(g, h, "host", h)
			}
		}
	}
	for h := 0; h < t.Hosts; h++ {
		f.GwToHost[h] = add(GatewayEndpoint, h, "host", h)
	}
	if err != nil {
		f.Proxy.Close()
		return nil, err
	}
	return f, nil
}

// SpecFor assembles the NodeSpec for one node, wiring its dial tables to
// the fabric's stable proxy addresses.
func (f *Fabric) SpecFor(kind string, index int, t Topology, tickMs, ttlMs int) NodeSpec {
	s := NodeSpec{Kind: kind, Index: index, Top: t, TickMs: tickMs, LeaseTTLMs: ttlMs}
	switch kind {
	case "controller":
		s.CtrlAddrs = f.CtrlToCtrl[index]
	case "host":
		s.CtrlAddrs = f.HostToCtrl[index]
		s.HostAddrs = f.HostToHost[index]
	case "gateway":
		s.HostAddrs = f.GwToHost
	}
	return s
}

// Close tears the fabric down, dropping every relayed connection.
func (f *Fabric) Close() { f.Proxy.Close() }

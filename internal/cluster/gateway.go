package cluster

import (
	"sync"
	"time"

	"laar/internal/netx"
)

// gatewayNode is the thin ingest tier: it turns the external tuple
// stream (here: a monotone counter, one tuple per tick) into deliveries
// to the hosts carrying the pipeline's first stage, spreading the same
// tuple across every replica of that stage — active replication means
// each active replica processes the full stream, and the per-slot
// dedup-by-ID on the hosts keeps redundant paths from double counting.
type gatewayNode struct {
	spec NodeSpec

	mu   sync.Mutex
	next uint64
	sent uint64

	// hosts[h] is the connection to host h, nil when h carries no
	// first-stage replica (the gateway only talks to source endpoints).
	hosts []*netx.Conn
}

func newGatewayNode(spec NodeSpec) *gatewayNode {
	g := &gatewayNode{spec: spec, hosts: make([]*netx.Conn, spec.Top.Hosts)}
	srcHosts := map[int]bool{}
	for k := 0; k < spec.Top.Replicas; k++ {
		srcHosts[spec.Top.HostOf(0, k)] = true
	}
	hello := encode(Hello{Kind: "gateway"})
	for h := range g.hosts {
		if !srcHosts[h] || h >= len(spec.HostAddrs) || spec.HostAddrs[h] == "" {
			continue
		}
		o := connOptions(spec, 977+int64(h))
		o.OnConnect = func(c *netx.Conn) { c.Send(MTHello, hello) }
		g.hosts[h] = netx.Dial(spec.HostAddrs[h], o)
	}
	return g
}

func (g *gatewayNode) handle(*netx.Peer, byte, []byte) {}

// tick emits one tuple of the external stream to every first-stage host
// currently reachable. A tuple that reaches no host is simply lost
// upstream of the system under test — the gateway does not buffer.
func (g *gatewayNode) tick(time.Time) {
	g.mu.Lock()
	g.next++
	id := g.next
	g.sent++
	conns := g.hosts
	g.mu.Unlock()
	msg := encode(Tuple{PE: 0, ID: id})
	for _, c := range conns {
		if c != nil {
			c.Send(MTTuple, msg)
		}
	}
}

func (g *gatewayNode) stats() StatsResp {
	g.mu.Lock()
	defer g.mu.Unlock()
	return StatsResp{Gateway: &GatewayStats{Sent: g.sent}}
}

func (g *gatewayNode) close() {
	for _, c := range g.hosts {
		if c != nil {
			c.Close()
		}
	}
}

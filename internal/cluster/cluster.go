// Package cluster is the distributed live runtime: replicas, controllers
// and the ingest gateway run as separate OS processes connected by real
// TCP through the netx frame codec. The nodes are thin shells around the
// same transport-agnostic control-plane kernel (internal/controlplane)
// the in-process runtimes use — the lease elector, command sequencer and
// replica proxy state — so the guarantees the model checker proves about
// the kernel are the guarantees the process cluster inherits.
//
// The moving parts:
//
//   - Controller nodes run the lease elector and, while leading, the
//     acknowledged command protocol toward every replica slot.
//   - Host nodes carry the replica slots of the demo pipeline, apply
//     activation commands through per-slot proxy state, and forward data
//     tuples down the pipeline.
//   - The gateway ingests an external tuple stream and fans it out to the
//     hosts carrying the pipeline's first stage.
//   - A Supervisor (cmd/laarcluster) spawns the processes, wires every
//     inter-node link through a netx.FaultProxy, replays a chaos
//     schedule, and checks the run-level invariant registry on the stats
//     it polls.
//
// All inter-node dials go through the fault fabric's stable proxy
// addresses, so a restarted node (fresh OS process, fresh port) is
// reachable at the same address and chaos link events map one-to-one
// onto real TCP connections.
package cluster

import "fmt"

// GatewayEndpoint is the fault-fabric endpoint of the ingest gateway,
// chosen far below the controller endpoint range so it can never collide
// with ControllerEndpoint(j) for a realistic controller count.
const GatewayEndpoint = -1000

// ControllerEndpoint maps controller index j to its fault-fabric
// endpoint, matching the live runtime's convention (-1 is controller 0).
func ControllerEndpoint(j int) int { return -(j + 1) }

// Topology fixes the shape of the demo deployment: a linear pipeline of
// PEs stages with Replicas replicas each, spread over Hosts host
// processes and Controllers controller processes.
type Topology struct {
	Hosts       int
	Controllers int
	PEs         int
	Replicas    int
}

// HostOf places replica (pe, k) on a host, striping replicas of the same
// PE across distinct hosts so one host failure never takes out a whole
// replica set (for Replicas <= Hosts).
func (t Topology) HostOf(pe, k int) int { return (pe + k) % t.Hosts }

// Slots calls fn for every replica slot living on host h.
func (t Topology) Slots(h int, fn func(pe, k int)) {
	for pe := 0; pe < t.PEs; pe++ {
		for k := 0; k < t.Replicas; k++ {
			if t.HostOf(pe, k) == h {
				fn(pe, k)
			}
		}
	}
}

// Validate rejects shapes the runtime cannot carry.
func (t Topology) Validate() error {
	switch {
	case t.Hosts < 1:
		return fmt.Errorf("cluster: need at least 1 host, have %d", t.Hosts)
	case t.Controllers < 1:
		return fmt.Errorf("cluster: need at least 1 controller, have %d", t.Controllers)
	case t.PEs < 1 || t.Replicas < 1:
		return fmt.Errorf("cluster: need at least 1 PE and 1 replica, have %d×%d", t.PEs, t.Replicas)
	}
	return nil
}

// WantActive is the target activation function: configuration 0 keeps
// only replica 0 of each PE active (minimum fault tolerance, minimum
// cost), any other configuration activates every replica — the two
// operating points the LAAR cost/availability trade-off moves between.
func WantActive(cfg, k int) bool { return cfg != 0 || k == 0 }

// NodeSpec is everything one node process needs to join the cluster. The
// supervisor serialises it as JSON onto the child's stdin; in-process
// tests construct it directly.
type NodeSpec struct {
	// Kind is "controller", "host" or "gateway"; Index identifies the
	// node within its kind.
	Kind  string
	Index int
	Top   Topology

	// Incarnation distinguishes process lifetimes of the same host index:
	// the supervisor bumps it on every respawn, and the leader resets its
	// command slots for a host whose incarnation changed (the old acks
	// described a process that no longer exists).
	Incarnation uint64
	// BallotFloor seeds a controller's highest-ballot watermark. The
	// supervisor passes the highest epoch it has ever polled, so a
	// restarted controller (which lost its elector state) cannot reclaim
	// an epoch that was already held.
	BallotFloor uint64

	// TickMs is the node's control loop period; LeaseTTLMs the lease
	// freshness window. Zero values select the defaults.
	TickMs     int
	LeaseTTLMs int

	// CtrlAddrs[j] is the address this node dials to reach controller j
	// (through the fault fabric). Hosts fill all slots; controllers leave
	// their own slot empty; the gateway may leave it nil.
	CtrlAddrs []string
	// HostAddrs[h] is the address this node dials to reach host h. Hosts
	// leave their own slot empty; controllers leave it nil (commands ride
	// the host→controller connections).
	HostAddrs []string

	// ListenAddr is where the node's own server listens; empty picks
	// 127.0.0.1:0.
	ListenAddr string
}

// withDefaults fills the tunables.
func (s NodeSpec) withDefaults() NodeSpec {
	if s.TickMs <= 0 {
		s.TickMs = 25
	}
	if s.LeaseTTLMs <= 0 {
		s.LeaseTTLMs = 8 * s.TickMs
	}
	if s.ListenAddr == "" {
		s.ListenAddr = "127.0.0.1:0"
	}
	return s
}

// Validate rejects specs a node cannot start from.
func (s NodeSpec) Validate() error {
	if err := s.Top.Validate(); err != nil {
		return err
	}
	switch s.Kind {
	case "controller":
		if s.Index < 0 || s.Index >= s.Top.Controllers {
			return fmt.Errorf("cluster: controller index %d out of range", s.Index)
		}
	case "host":
		if s.Index < 0 || s.Index >= s.Top.Hosts {
			return fmt.Errorf("cluster: host index %d out of range", s.Index)
		}
	case "gateway":
		if s.Index != 0 {
			return fmt.Errorf("cluster: gateway index must be 0, have %d", s.Index)
		}
	default:
		return fmt.Errorf("cluster: unknown node kind %q", s.Kind)
	}
	return nil
}

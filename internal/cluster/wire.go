package cluster

import (
	"encoding/json"
	"fmt"
)

// Frame types of the cluster wire protocol. Payloads are JSON — the
// volume is control-plane scale (beats, commands, small tuples), so
// debuggability beats compactness here; the frame layer beneath is
// binary and bounded either way.
const (
	// MTHello introduces a dialing node to a server (first frame on every
	// connection, replayed on each reconnect).
	MTHello byte = 1
	// MTBeat is a host's heartbeat to a controller: liveness,
	// incarnation, and per-slot state.
	MTBeat byte = 2
	// MTCommand is an activation command, controller → host, riding the
	// host's dialed connection in reverse.
	MTCommand byte = 3
	// MTAck answers a command, host → controller: applied or refused
	// (stale ballot, carrying the adopted one).
	MTAck byte = 4
	// MTCtrlBeat is controller → controller gossip: liveness, ballot
	// watermark, lease role, and the target configuration.
	MTCtrlBeat byte = 5
	// MTTuple is one data tuple moving down the pipeline.
	MTTuple byte = 6
	// MTTarget switches the target configuration (sent to controllers).
	MTTarget byte = 7
	// MTStatsReq asks a node for its stats snapshot; MTStatsResp answers.
	MTStatsReq  byte = 8
	MTStatsResp byte = 9
)

// Hello identifies a dialing node.
type Hello struct {
	Kind        string
	Index       int
	Incarnation uint64
}

// SlotState is one replica slot's state as reported in beats and stats.
type SlotState struct {
	PE, K      int
	Active     bool
	ProxyEpoch uint64
	ProxySeq   uint64
	Processed  uint64
}

// Beat is a host heartbeat.
type Beat struct {
	Host        int
	Incarnation uint64
	Slots       []SlotState
}

// CommandMsg carries one sequencer command to a replica slot.
type CommandMsg struct {
	Epoch  uint64
	Seq    uint64
	PE, K  int
	Active bool
}

// AckMsg answers a CommandMsg. Applied false is a NACK: the command's
// ballot was stale, and Adopted carries the ballot the proxy holds so
// the deposed leader can re-claim above it.
type AckMsg struct {
	Epoch   uint64
	Seq     uint64
	PE, K   int
	Applied bool
	Adopted uint64
}

// CtrlBeat is controller gossip.
type CtrlBeat struct {
	ID      int
	MaxSeen uint64
	Epoch   uint64
	Leading bool
	Cfg     int
	CfgSeq  uint64
}

// Tuple is one data-plane tuple addressed to a pipeline stage.
type Tuple struct {
	PE int
	ID uint64
}

// Target switches the activation target. CfgSeq orders concurrent
// switches; controllers adopt the highest they have seen and gossip it,
// so a leader elected after the switch still drives the right target.
type Target struct {
	Cfg    int
	CfgSeq uint64
}

// CtrlStats is a controller's stats snapshot.
type CtrlStats struct {
	ID      int
	Leading bool
	Epoch   uint64
	MaxSeen uint64
	Pending int
	Cfg     int
	CfgSeq  uint64
}

// HostStats is a host's stats snapshot. Dials and Drops aggregate the
// host's controller connections (successful dials and established
// connections subsequently lost) — the observable a reconnect test uses
// to tell a backoff-capped redial schedule from a reconnect storm.
type HostStats struct {
	Host        int
	Incarnation uint64
	Dials       int64
	Drops       int64
	Slots       []SlotState
}

// GatewayStats is the gateway's stats snapshot.
type GatewayStats struct {
	Sent uint64
}

// StatsResp is the union stats reply; exactly one pointer is set,
// matching the node's kind.
type StatsResp struct {
	Ctrl    *CtrlStats    `json:",omitempty"`
	Host    *HostStats    `json:",omitempty"`
	Gateway *GatewayStats `json:",omitempty"`
}

// encode marshals a wire message, panicking on the impossible case (all
// wire types marshal cleanly by construction).
func encode(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("cluster: encode %T: %v", v, err))
	}
	return b
}

// decode unmarshals a wire message into v.
func decode(payload []byte, v any) error {
	return json.Unmarshal(payload, v)
}

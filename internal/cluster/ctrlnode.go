package cluster

import (
	"sync"
	"time"

	"laar/internal/controlplane"
	"laar/internal/netx"
)

// ctrlNode is one controller process: the lease elector decides whether
// it leads, and while it does, the command sequencer drives every
// replica slot toward the target activation over the hosts' dialed
// connections. Everything protocol-critical lives in the controlplane
// kernel; this file is transport glue.
type ctrlNode struct {
	spec NodeSpec

	mu      sync.Mutex
	elector *controlplane.LeaseElector
	seq     *controlplane.CommandSequencer
	cfg     int
	cfgSeq  uint64

	// hostPeer is the current inbound connection of each host (commands
	// ride it in reverse); hostInc the host's last known incarnation.
	hostPeer map[int]*netx.Peer
	hostInc  map[int]uint64

	// peers[j] is the one-way gossip connection to controller j (nil for
	// self): beats flow out on it, the peer's beats arrive on our server.
	peers []*netx.Conn
}

func newCtrlNode(spec NodeSpec) *ctrlNode {
	now := time.Now().UnixNano()
	tickNs := (time.Duration(spec.TickMs) * time.Millisecond).Nanoseconds()
	ttlNs := (time.Duration(spec.LeaseTTLMs) * time.Millisecond).Nanoseconds()
	c := &ctrlNode{
		spec:     spec,
		elector:  controlplane.NewLeaseElector(spec.Index, spec.Top.Controllers, ttlNs, now),
		seq:      controlplane.NewCommandSequencer(spec.Top.PEs, spec.Top.Replicas, controlplane.RetryPolicy{Min: 2 * tickNs, Max: 16 * tickNs}),
		cfg:      1, // default target: every replica active
		hostPeer: make(map[int]*netx.Peer),
		hostInc:  make(map[int]uint64),
		peers:    make([]*netx.Conn, spec.Top.Controllers),
	}
	// A restarted controller lost its elector state; the floor keeps it
	// from reclaiming an epoch some incarnation of the cluster already
	// held.
	c.elector.Observe(spec.BallotFloor)
	for j := range c.peers {
		if j == spec.Index || j >= len(spec.CtrlAddrs) || spec.CtrlAddrs[j] == "" {
			continue
		}
		c.peers[j] = netx.Dial(spec.CtrlAddrs[j], connOptions(spec, int64(spec.Index)*31+int64(j)))
	}
	return c
}

func (c *ctrlNode) handle(p *netx.Peer, typ byte, payload []byte) {
	switch typ {
	case MTHello:
		var h Hello
		if decode(payload, &h) != nil || h.Kind != "host" {
			return
		}
		p.Tag.Store(h.Index)
		c.mu.Lock()
		c.hostPeer[h.Index] = p
		c.noteIncarnation(h.Index, h.Incarnation)
		c.mu.Unlock()
	case MTBeat:
		var b Beat
		if decode(payload, &b) != nil {
			return
		}
		c.mu.Lock()
		c.hostPeer[b.Host] = p
		c.noteIncarnation(b.Host, b.Incarnation)
		c.mu.Unlock()
	case MTAck:
		var a AckMsg
		if decode(payload, &a) != nil ||
			a.PE < 0 || a.PE >= c.spec.Top.PEs || a.K < 0 || a.K >= c.spec.Top.Replicas {
			return
		}
		c.mu.Lock()
		if a.Applied {
			// AckedMatch: acks arrive asynchronously here, so an ack must
			// name the in-flight command exactly — a host's re-ack of a
			// duplicate carries the last applied sequence and must not
			// complete a newer command still in flight.
			if c.elector.Leading() {
				c.seq.AckedMatch(a.PE, a.K, a.Epoch, a.Seq)
			}
		} else {
			// NACK: a replica has adopted a higher ballot. Observing it
			// makes the next Evaluate re-claim above it.
			c.elector.Observe(a.Adopted)
		}
		c.mu.Unlock()
	case MTCtrlBeat:
		var b CtrlBeat
		if decode(payload, &b) != nil {
			return
		}
		c.mu.Lock()
		if b.ID >= 0 && b.ID < c.spec.Top.Controllers {
			c.elector.HearPeer(b.ID, time.Now().UnixNano())
			c.elector.Observe(b.MaxSeen)
			if b.CfgSeq > c.cfgSeq {
				c.cfg, c.cfgSeq = b.Cfg, b.CfgSeq
			}
		}
		c.mu.Unlock()
	case MTTarget:
		var t Target
		if decode(payload, &t) != nil {
			return
		}
		c.mu.Lock()
		if t.CfgSeq == 0 {
			t.CfgSeq = c.cfgSeq + 1
		}
		if t.CfgSeq > c.cfgSeq {
			c.cfg, c.cfgSeq = t.Cfg, t.CfgSeq
		}
		c.mu.Unlock()
	}
}

// noteIncarnation (mu held) resets the sequencer slots of a host whose
// process was replaced: the new process's proxy state starts from zero,
// so acks granted to the old incarnation describe nothing.
func (c *ctrlNode) noteIncarnation(host int, inc uint64) {
	prev, known := c.hostInc[host]
	if known && prev == inc {
		return
	}
	c.hostInc[host] = inc
	if known {
		c.spec.Top.Slots(host, func(pe, k int) { c.seq.ResetSlot(pe, k) })
	}
}

// peerGone forgets a host's inbound connection when it drops, so the
// sequencer fails fast to the backoff path instead of writing into a
// dead peer.
func (c *ctrlNode) peerGone(p *netx.Peer) {
	h, ok := p.Tag.Load().(int)
	if !ok {
		return
	}
	c.mu.Lock()
	if c.hostPeer[h] == p {
		delete(c.hostPeer, h)
	}
	c.mu.Unlock()
}

func (c *ctrlNode) tick(now time.Time) {
	n := now.UnixNano()
	c.mu.Lock()
	switch c.elector.Evaluate(n) {
	case controlplane.LeaseClaim:
		epoch := c.elector.Claim()
		c.seq.BeginEpoch(epoch)
	case controlplane.LeaseYield:
		c.elector.StepDown()
		c.seq.DropPending()
	}

	type outCmd struct {
		peer *netx.Peer
		msg  CommandMsg
	}
	var out []outCmd
	if c.elector.Leading() {
		top := c.spec.Top
		for pe := 0; pe < top.PEs; pe++ {
			for k := 0; k < top.Replicas; k++ {
				want := WantActive(c.cfg, k)
				cmd, send, _ := c.seq.Step(pe, k, want, n)
				if !send {
					continue
				}
				peer := c.hostPeer[top.HostOf(pe, k)]
				if peer != nil {
					out = append(out, outCmd{peer, CommandMsg{Epoch: cmd.Epoch, Seq: cmd.Seq, PE: pe, K: k, Active: cmd.Active}})
				}
				// Sent or not, schedule the retransmission; an ack
				// cancels it, anything else retries with backoff.
				c.seq.Failed(pe, k, n)
			}
		}
	}
	beat := CtrlBeat{
		ID:      c.spec.Index,
		MaxSeen: c.elector.MaxSeen(),
		Epoch:   c.elector.Epoch(),
		Leading: c.elector.Leading(),
		Cfg:     c.cfg,
		CfgSeq:  c.cfgSeq,
	}
	peers := c.peers
	c.mu.Unlock()

	// Network writes happen outside the lock: a slow or severed link
	// must not stall command handling.
	for _, o := range out {
		o.peer.Send(MTCommand, encode(o.msg))
	}
	b := encode(beat)
	for _, pc := range peers {
		if pc != nil {
			pc.Send(MTCtrlBeat, b)
		}
	}
}

func (c *ctrlNode) stats() StatsResp {
	c.mu.Lock()
	defer c.mu.Unlock()
	return StatsResp{Ctrl: &CtrlStats{
		ID:      c.spec.Index,
		Leading: c.elector.Leading(),
		Epoch:   c.elector.Epoch(),
		MaxSeen: c.elector.MaxSeen(),
		Pending: c.seq.Pending(),
		Cfg:     c.cfg,
		CfgSeq:  c.cfgSeq,
	}}
}

func (c *ctrlNode) close() {
	for _, pc := range c.peers {
		if pc != nil {
			pc.Close()
		}
	}
}

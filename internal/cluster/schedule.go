package cluster

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// EventKind enumerates chaos schedule events. Process events (kill,
// restart) go to the supervisor; link events go to the fault fabric,
// mapping one-to-one onto the in-process NetFault surface.
type EventKind int

const (
	// EvKill terminates a node process (SIGKILL — no goodbye).
	EvKill EventKind = iota
	// EvRestart spawns a fresh process for a previously killed node,
	// with a bumped incarnation and (for controllers) the ballot floor.
	EvRestart
	// EvCut severs the link between two endpoints; EvHeal restores it.
	EvCut
	EvHeal
	// EvLoss sets the global frame-loss probability; EvLinkLoss
	// overrides it for one endpoint pair.
	EvLoss
	EvLinkLoss
	// EvDelay sets the global link delay; EvLinkDelay one pair's.
	EvDelay
	EvLinkDelay
	// EvTarget switches the activation target configuration.
	EvTarget
)

// Event is one scheduled chaos action.
type Event struct {
	At   time.Duration
	Kind EventKind
	Node string        // EvKill/EvRestart: node name ("ctrl0", "host1")
	A, B int           // link events: endpoint pair
	P    float64       // loss probability
	D    time.Duration // delay
	Cfg  int           // EvTarget: configuration index
}

// Schedule is a chaos schedule, kept sorted by time.
type Schedule []Event

// ParseEndpoint maps a node name to its fault-fabric endpoint: "hostN"
// → N, "ctrlN" → ControllerEndpoint(N), "gw" → GatewayEndpoint.
func ParseEndpoint(s string) (int, error) {
	switch {
	case s == "gw":
		return GatewayEndpoint, nil
	case strings.HasPrefix(s, "host"):
		n, err := strconv.Atoi(s[len("host"):])
		if err != nil || n < 0 {
			return 0, fmt.Errorf("cluster: bad host endpoint %q", s)
		}
		return n, nil
	case strings.HasPrefix(s, "ctrl"):
		n, err := strconv.Atoi(s[len("ctrl"):])
		if err != nil || n < 0 {
			return 0, fmt.Errorf("cluster: bad controller endpoint %q", s)
		}
		return ControllerEndpoint(n), nil
	}
	return 0, fmt.Errorf("cluster: unknown endpoint %q", s)
}

// ParseSchedule parses a compact schedule: events separated by ";", each
// "<time> <verb> <args>". Verbs:
//
//	500ms kill ctrl0          1200ms restart ctrl0
//	600ms cut host0 ctrl1     1500ms heal host0 ctrl1
//	700ms loss 0.2            800ms loss host0 host1 0.5
//	900ms delay 5ms           1s delay gw host0 10ms
//	2s target 0
func ParseSchedule(s string) (Schedule, error) {
	var sched Schedule
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Fields(part)
		if len(fields) < 2 {
			return nil, fmt.Errorf("cluster: bad schedule event %q", part)
		}
		at, err := time.ParseDuration(fields[0])
		if err != nil {
			return nil, fmt.Errorf("cluster: bad event time in %q: %v", part, err)
		}
		ev := Event{At: at}
		verb, args := fields[1], fields[2:]
		bad := func() error { return fmt.Errorf("cluster: bad %s event %q", verb, part) }
		switch verb {
		case "kill", "restart":
			if len(args) != 1 {
				return nil, bad()
			}
			if _, err := ParseEndpoint(args[0]); err != nil || args[0] == "gw" {
				return nil, bad()
			}
			ev.Kind, ev.Node = EvKill, args[0]
			if verb == "restart" {
				ev.Kind = EvRestart
			}
		case "cut", "heal":
			if len(args) != 2 {
				return nil, bad()
			}
			if ev.A, err = ParseEndpoint(args[0]); err != nil {
				return nil, err
			}
			if ev.B, err = ParseEndpoint(args[1]); err != nil {
				return nil, err
			}
			ev.Kind = EvCut
			if verb == "heal" {
				ev.Kind = EvHeal
			}
		case "loss":
			switch len(args) {
			case 1:
				ev.Kind = EvLoss
				if ev.P, err = strconv.ParseFloat(args[0], 64); err != nil {
					return nil, bad()
				}
			case 3:
				ev.Kind = EvLinkLoss
				if ev.A, err = ParseEndpoint(args[0]); err != nil {
					return nil, err
				}
				if ev.B, err = ParseEndpoint(args[1]); err != nil {
					return nil, err
				}
				if ev.P, err = strconv.ParseFloat(args[2], 64); err != nil {
					return nil, bad()
				}
			default:
				return nil, bad()
			}
			if ev.P < 0 || ev.P > 1 {
				return nil, fmt.Errorf("cluster: loss probability %v outside [0,1] in %q", ev.P, part)
			}
		case "delay":
			switch len(args) {
			case 1:
				ev.Kind = EvDelay
				if ev.D, err = time.ParseDuration(args[0]); err != nil {
					return nil, bad()
				}
			case 3:
				ev.Kind = EvLinkDelay
				if ev.A, err = ParseEndpoint(args[0]); err != nil {
					return nil, err
				}
				if ev.B, err = ParseEndpoint(args[1]); err != nil {
					return nil, err
				}
				if ev.D, err = time.ParseDuration(args[2]); err != nil {
					return nil, bad()
				}
			default:
				return nil, bad()
			}
		case "target":
			if len(args) != 1 {
				return nil, bad()
			}
			ev.Kind = EvTarget
			if ev.Cfg, err = strconv.Atoi(args[0]); err != nil || ev.Cfg < 0 {
				return nil, bad()
			}
		default:
			return nil, fmt.Errorf("cluster: unknown schedule verb %q in %q", verb, part)
		}
		sched = append(sched, ev)
	}
	sort.SliceStable(sched, func(i, j int) bool { return sched[i].At < sched[j].At })
	return sched, nil
}

// DefaultScheduleText is the acceptance scenario: kill the leading
// controller, cut a host off the interim leader, heal, and bring the old
// leader back — the cluster must re-elect twice and reconverge with zero
// invariant violations.
const DefaultScheduleText = "500ms kill ctrl0; 800ms cut host0 ctrl1; 1600ms heal host0 ctrl1; 2s restart ctrl0"

// DefaultSchedule returns DefaultScheduleText parsed.
func DefaultSchedule() Schedule {
	s, err := ParseSchedule(DefaultScheduleText)
	if err != nil {
		panic(err) // the literal above must parse
	}
	return s
}

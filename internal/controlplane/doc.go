// Package controlplane is the runtime-agnostic kernel of the LAAR control
// plane: pure, clock-free, allocation-light state machines for the four
// decision components every LAAR runtime needs — rate monitoring and
// configuration selection (RateMonitor), lease-based leadership
// (LeaseElector), the acknowledged idempotent activation-command protocol
// (CommandSequencer and its replica-side ProxyState), and the replica
// fail-safe rule (FailSafeTracker).
//
// The machines hold no goroutines, channels, clocks or RNGs: they take
// abstract time (int64 nanoseconds for the live runtime, float64 seconds
// for the discrete-event engine — see the Time constraint) plus explicit
// inputs, and return explicit decisions for the caller to execute. The
// engine drives them from its simulated clock and schedules returned
// delays on its kernel; the live runtime drives them from Clock time on
// each instance's own goroutine and ships returned commands over its
// Transport, keeping its atomics as cross-goroutine mailboxes that are
// drained into the machines at each tick.
//
// Because both runtimes execute the same arithmetic, sim↔live decision
// divergence is structurally impossible: the chaos harness's differential
// mode no longer polices two independent implementations of the protocol,
// and its model-check mode exercises these machines directly, without
// either runtime.
//
// The package deliberately imports neither internal/engine, internal/live
// nor internal/sim; it may be reused by any future backend.
package controlplane

package controlplane

import "testing"

func pat(rows ...[2]bool) [][]bool {
	p := make([][]bool, len(rows))
	for i, r := range rows {
		p[i] = []bool{r[0], r[1]}
	}
	return p
}

func TestReconfigPlannerOrdersActivationsFirst(t *testing.T) {
	old := pat([2]bool{true, false}, [2]bool{true, true}, [2]bool{false, true})
	new := pat([2]bool{true, true}, [2]bool{true, false}, [2]bool{true, false})
	var p ReconfigPlanner
	ops := p.Plan(old, new)
	want := []FlipOp{
		{PE: 0, K: 1, Activate: true},
		{PE: 2, K: 0, Activate: true},
		{PE: 1, K: 1, Activate: false},
		{PE: 2, K: 1, Activate: false},
	}
	if len(ops) != len(want) {
		t.Fatalf("got %d ops %v, want %d", len(ops), ops, len(want))
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("op %d = %v, want %v", i, ops[i], want[i])
		}
	}
	seenDeact := false
	for _, op := range ops {
		if !op.Activate {
			seenDeact = true
		} else if seenDeact {
			t.Fatal("activation ordered after a deactivation")
		}
	}
	if got := p.Plan(old, old); len(got) != 0 {
		t.Fatalf("identical patterns planned %v", got)
	}
}

func TestUnion(t *testing.T) {
	old := pat([2]bool{true, false}, [2]bool{false, false})
	new := pat([2]bool{false, true}, [2]bool{false, true})
	u := Union(nil, old, new)
	want := pat([2]bool{true, true}, [2]bool{false, true})
	for pe := range want {
		for k := range want[pe] {
			if u[pe][k] != want[pe][k] {
				t.Fatalf("union[%d][%d] = %v", pe, k, u[pe][k])
			}
		}
	}
	// Reuse must overwrite in place.
	u2 := Union(u, new, old)
	if &u2[0][0] != &u[0][0] {
		t.Fatal("union reallocated a correctly-shaped dst")
	}
}

func TestMigrationSequencerTwoWaves(t *testing.T) {
	old := pat([2]bool{true, false}, [2]bool{true, true})
	new := pat([2]bool{false, true}, [2]bool{true, false})
	m := NewMigrationSequencer(2, 2)
	if m.InFlight() || m.Want(0, 0) {
		t.Fatal("zero-value sequencer not idle")
	}
	m.Begin(old, new)
	if !m.InFlight() || m.Wave() != WaveActivate {
		t.Fatalf("wave = %d after Begin", m.Wave())
	}
	// Activation wave: union pattern.
	for _, c := range []struct {
		pe, k int
		want  bool
	}{{0, 0, true}, {0, 1, true}, {1, 0, true}, {1, 1, true}} {
		if got := m.Want(c.pe, c.k); got != c.want {
			t.Fatalf("wave 0 Want(%d,%d) = %v", c.pe, c.k, got)
		}
	}
	// Confirmations for slots that were already active do not advance.
	if m.Applied(1, 0, true) {
		t.Fatal("advanced on an unneeded confirmation")
	}
	// Wrong-polarity confirmation for the needed slot is ignored.
	if m.Applied(0, 1, false); m.Wave() != WaveActivate {
		t.Fatal("deactivation confirmation advanced the activation wave")
	}
	if !m.Applied(0, 1, true) || m.Wave() != WaveDeactivate {
		t.Fatalf("wave = %d after last activation confirmed", m.Wave())
	}
	// Deactivation wave: new pattern.
	if m.Want(0, 0) || !m.Want(0, 1) || !m.Want(1, 0) || m.Want(1, 1) {
		t.Fatal("wave 1 wants are not the new pattern")
	}
	if m.Applied(0, 0, false); !m.InFlight() {
		t.Fatal("migration completed with a deactivation outstanding")
	}
	if !m.Applied(1, 1, false) || m.InFlight() {
		t.Fatal("migration did not complete on the last deactivation")
	}
	// After completion Want keeps reporting the target.
	if m.Want(0, 0) || !m.Want(0, 1) {
		t.Fatal("post-migration wants are not the new pattern")
	}
	if m.Applied(0, 0, false) {
		t.Fatal("idle sequencer accepted a confirmation")
	}
}

func TestMigrationSequencerDegenerateWaves(t *testing.T) {
	// Pure activation: the deactivation wave is empty and completion
	// follows the last activation immediately.
	m := NewMigrationSequencer(1, 2)
	m.Begin(pat([2]bool{true, false}), pat([2]bool{true, true}))
	if m.Wave() != WaveActivate {
		t.Fatalf("wave = %d", m.Wave())
	}
	if !m.Applied(0, 1, true) || m.InFlight() {
		t.Fatal("pure-activation migration did not complete")
	}
	// Pure deactivation: the activation wave is skipped at Begin.
	m.Begin(pat([2]bool{true, true}), pat([2]bool{true, false}))
	if m.Wave() != WaveDeactivate {
		t.Fatalf("wave = %d, want immediate deactivation wave", m.Wave())
	}
	if m.Want(0, 1) {
		t.Fatal("deactivation wave still wants the old-only slot")
	}
	// Equal patterns: nothing in flight.
	m.Begin(pat([2]bool{true, false}), pat([2]bool{true, false}))
	if m.InFlight() {
		t.Fatal("no-op migration in flight")
	}
}

func TestMigrationSequencerSupersedeKeepsUnionSafe(t *testing.T) {
	// A second Begin during the activation wave must fold the in-flight
	// union into the new migration's old pattern: slot (0,1) — activated
	// for the superseded target — stays wanted until the deactivation wave
	// of the new migration.
	m := NewMigrationSequencer(1, 2)
	m.Begin(pat([2]bool{true, false}), pat([2]bool{false, true}))
	if !m.Want(0, 0) || !m.Want(0, 1) {
		t.Fatal("wave 0 wants are not the union")
	}
	m.Begin(pat([2]bool{true, false}), pat([2]bool{true, false}))
	if m.Wave() != WaveDeactivate {
		t.Fatalf("wave = %d after supersede with no new activations", m.Wave())
	}
	if !m.Want(0, 0) || m.Want(0, 1) {
		t.Fatal("superseding migration wants are wrong")
	}
	if !m.Applied(0, 1, false) || m.InFlight() {
		t.Fatal("superseding migration did not complete")
	}
}

func TestMigrationSequencerAbort(t *testing.T) {
	m := NewMigrationSequencer(1, 2)
	m.Begin(pat([2]bool{true, false}), pat([2]bool{false, true}))
	m.Abort()
	if m.InFlight() {
		t.Fatal("aborted migration still in flight")
	}
	// The target pattern survives the abort.
	if m.Want(0, 0) || !m.Want(0, 1) {
		t.Fatal("aborted sequencer forgot its target")
	}
	if m.Applied(0, 1, true) {
		t.Fatal("aborted sequencer accepted a confirmation")
	}
}

package controlplane

// This file holds the model-checking hooks of the control-plane machines:
// snapshot/restore (so an exhaustive explorer can branch over alternative
// futures of one state) and canonical fingerprinting (so states reached by
// different event orders collapse to one visited-set entry).
//
// Fingerprints are canonical in time: absolute timestamps never enter the
// hash. An elector hashes per-peer heartbeat *ages* clamped at TTL+1 (every
// staleness beyond the TTL is behaviourally identical), a sequencer hashes
// per-slot retransmission *waits* clamped at the backoff ceiling, and the
// fail-safe hashes its silence age clamped at the horizon. Two states with
// equal fingerprints are bisimilar: every machine decision (Evaluate, Step,
// Engage) reads time only through these clamped differences.

// Fingerprint is a streaming FNV-1a 64-bit hash over a machine-state
// encoding. The zero value is not ready; use NewFingerprint.
type Fingerprint struct {
	h uint64
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// NewFingerprint returns a fingerprint at the FNV-1a offset basis.
func NewFingerprint() *Fingerprint { return &Fingerprint{h: fnvOffset} }

// Reset returns the fingerprint to its initial state for reuse.
func (f *Fingerprint) Reset() { f.h = fnvOffset }

// U64 mixes one 64-bit value into the hash, byte by byte.
func (f *Fingerprint) U64(v uint64) {
	h := f.h
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime
		v >>= 8
	}
	f.h = h
}

// I64 mixes one signed value.
func (f *Fingerprint) I64(v int64) { f.U64(uint64(v)) }

// Bool mixes one boolean.
func (f *Fingerprint) Bool(b bool) {
	if b {
		f.U64(1)
	} else {
		f.U64(0)
	}
}

// Sum returns the accumulated hash.
func (f *Fingerprint) Sum() uint64 { return f.h }

// clampAge canonicalises the age now−then to [0, horizon+1]: all ages past
// the horizon are behaviourally identical, and a future timestamp (age < 0)
// cannot occur under a monotone clock but clamps to 0 defensively.
func clampAge(then, now, horizon int64) int64 {
	age := now - then
	if age < 0 {
		age = 0
	}
	if age > horizon+1 {
		age = horizon + 1
	}
	return age
}

// LeaseSnapshot is the complete externalised state of a LeaseElector.
type LeaseSnapshot struct {
	ID        int
	TTL       int64
	LastHeard []int64
	Epoch     uint64
	MaxSeen   uint64
	Leading   bool
}

// SnapshotInto writes the elector's state into s, reusing s's LastHeard
// buffer when it has capacity.
func (e *LeaseElector) SnapshotInto(s *LeaseSnapshot) {
	s.ID, s.TTL = e.id, e.ttl
	s.Epoch, s.MaxSeen, s.Leading = e.epoch, e.maxSeen, e.leading
	s.LastHeard = append(s.LastHeard[:0], e.lastHeard...)
}

// Snapshot returns a freshly allocated copy of the elector's state.
func (e *LeaseElector) Snapshot() LeaseSnapshot {
	var s LeaseSnapshot
	e.SnapshotInto(&s)
	return s
}

// Restore overwrites the elector's state from a snapshot. The snapshot's
// slice is copied, not aliased, so it stays valid for further restores.
func (e *LeaseElector) Restore(s LeaseSnapshot) {
	e.id, e.ttl = s.ID, s.TTL
	e.epoch, e.maxSeen, e.leading = s.Epoch, s.MaxSeen, s.Leading
	e.lastHeard = append(e.lastHeard[:0], s.LastHeard...)
}

// Hash mixes the elector's canonical state at time now: role, ballots, and
// per-peer heartbeat ages clamped at TTL+1.
func (e *LeaseElector) Hash(f *Fingerprint, now int64) {
	f.Bool(e.leading)
	f.U64(e.epoch)
	f.U64(e.maxSeen)
	for _, at := range e.lastHeard {
		f.I64(clampAge(at, now, e.ttl))
	}
}

// SlotSnapshot is one sequencer slot's externalised state.
type SlotSnapshot struct {
	Cmd     Command
	NextAt  int64
	Backoff int64
	Pending bool
	Acked   int8
}

// SequencerSnapshot is the complete externalised state of a
// CommandSequencer (the retry policy and shape are construction constants
// and not part of it).
type SequencerSnapshot struct {
	Epoch    uint64
	Seq      uint64
	PendingN int
	Slots    []SlotSnapshot
}

// SnapshotInto writes the sequencer's state into s, reusing s's slot
// buffer when it has capacity.
func (s *CommandSequencer) SnapshotInto(sn *SequencerSnapshot) {
	sn.Epoch, sn.Seq, sn.PendingN = s.epoch, s.seq, s.pendingN
	sn.Slots = sn.Slots[:0]
	for i := range s.slots {
		sl := &s.slots[i]
		sn.Slots = append(sn.Slots, SlotSnapshot{
			Cmd: sl.cmd, NextAt: sl.nextAt, Backoff: sl.backoff,
			Pending: sl.pending, Acked: sl.acked,
		})
	}
}

// Snapshot returns a freshly allocated copy of the sequencer's state.
func (s *CommandSequencer) Snapshot() SequencerSnapshot {
	var sn SequencerSnapshot
	s.SnapshotInto(&sn)
	return sn
}

// Restore overwrites the sequencer's state from a snapshot of the same
// shape (numPEs × k unchanged since construction).
func (s *CommandSequencer) Restore(sn SequencerSnapshot) {
	s.epoch, s.seq, s.pendingN = sn.Epoch, sn.Seq, sn.PendingN
	for i := range s.slots {
		ss := sn.Slots[i]
		s.slots[i] = slot{
			cmd: ss.Cmd, nextAt: ss.NextAt, backoff: ss.Backoff,
			pending: ss.Pending, acked: ss.Acked,
		}
	}
}

// Hash mixes the sequencer's canonical state at time now: the issuing
// ballot, the sequence watermark, and per slot the in-flight command, ack
// state, backoff, and the retransmission wait clamped at the backoff
// ceiling. A fresh command (NextAt 0) and a due retransmission hash the
// same wait 0 — Step treats them identically.
func (s *CommandSequencer) Hash(f *Fingerprint, now int64) {
	f.U64(s.epoch)
	f.U64(s.seq)
	for i := range s.slots {
		sl := &s.slots[i]
		f.Bool(sl.pending)
		f.I64(int64(sl.acked))
		f.U64(sl.cmd.Epoch)
		f.U64(sl.cmd.Seq)
		f.Bool(sl.cmd.Active)
		f.I64(sl.backoff)
		wait := sl.nextAt - now
		if wait < 0 || sl.nextAt == 0 {
			wait = 0
		}
		if wait > s.policy.Max {
			wait = s.policy.Max
		}
		f.I64(wait)
	}
}

// WouldSend reports, without side effects, whether Step(pe, k, want, now)
// would return send=true — the enabledness predicate an exhaustive
// explorer uses to enumerate command-transmission events.
func (s *CommandSequencer) WouldSend(pe, k int, want bool, now int64) bool {
	sl := &s.slots[pe*s.k+k]
	wantAck := ackInactive
	if want {
		wantAck = ackActive
	}
	if sl.acked == wantAck {
		return false
	}
	if !sl.pending || sl.cmd.Active != want {
		return true // a fresh command transmits immediately
	}
	return now >= sl.nextAt
}

// Superseded reports whether the slot holds a pending command the current
// wanted state has made redundant (Step would clear it without sending).
func (s *CommandSequencer) Superseded(pe, k int, want bool) bool {
	sl := &s.slots[pe*s.k+k]
	wantAck := ackInactive
	if want {
		wantAck = ackActive
	}
	return sl.pending && sl.acked == wantAck
}

// Hash mixes the proxy's idempotency state.
func (p ProxyState) Hash(f *Fingerprint) {
	f.U64(p.Epoch)
	f.U64(p.Seq)
}

// FailSafeSnapshot is the complete externalised state of a FailSafeTracker.
type FailSafeSnapshot[T Time] struct {
	Horizon     T
	LastContact T
	Engaged     bool
}

// Snapshot returns the tracker's state.
func (t *FailSafeTracker[T]) Snapshot() FailSafeSnapshot[T] {
	return FailSafeSnapshot[T]{Horizon: t.horizon, LastContact: t.lastContact, Engaged: t.engaged}
}

// Restore overwrites the tracker's state from a snapshot.
func (t *FailSafeTracker[T]) Restore(s FailSafeSnapshot[T]) {
	t.horizon, t.lastContact, t.engaged = s.Horizon, s.LastContact, s.Engaged
}

// HashFailSafe mixes a tracker snapshot's canonical state at time now: the
// engaged latch and the silence age clamped at the horizon.
func HashFailSafe(f *Fingerprint, s FailSafeSnapshot[int64], now int64) {
	f.Bool(s.Engaged)
	if s.Horizon < 0 {
		f.I64(-1) // disabled: age is irrelevant
		return
	}
	f.I64(clampAge(s.LastContact, now, s.Horizon))
}

// MonitorSnapshot is the complete externalised state of a RateMonitor (the
// configuration lookup is a construction constant and not part of it).
type MonitorSnapshot struct {
	Windows  []float64
	Measured []float64
	Applied  int
}

// Snapshot returns a freshly allocated copy of the monitor's state.
func (m *RateMonitor) Snapshot() MonitorSnapshot {
	return MonitorSnapshot{
		Windows:  append([]float64(nil), m.windows...),
		Measured: append([]float64(nil), m.measured...),
		Applied:  m.applied,
	}
}

// Restore overwrites the monitor's state from a snapshot. The snapshot's
// slices are copied, not aliased.
func (m *RateMonitor) Restore(s MonitorSnapshot) {
	copy(m.windows, s.Windows)
	copy(m.measured, s.Measured)
	m.applied = s.Applied
}

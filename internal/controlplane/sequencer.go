package controlplane

// CommandRetryLimit caps consecutive lost command rounds in both runtimes:
// the engine's geometric retry draw (GeometricRetries) and any retransmit
// loop stop after this many rounds, so a loss probability close to 1
// cannot stall a run.
const CommandRetryLimit = 64

// DefaultRetryMaxFactor derives the default retransmission-backoff ceiling
// from the floor: max = factor × min, doubling per attempt in between.
const DefaultRetryMaxFactor = 8

// RetryPolicy is the capped-exponential retransmission backoff: the first
// retry waits Min, each further retry doubles, capped at Max.
type RetryPolicy struct {
	Min, Max int64
}

// Next returns the backoff that follows cur: Min when no backoff is set
// yet, otherwise double cur capped at Max.
func (p RetryPolicy) Next(cur int64) int64 {
	if cur <= 0 {
		return p.Min
	}
	cur *= 2
	if cur > p.Max {
		cur = p.Max
	}
	return cur
}

// GeometricRetries draws the number of consecutive lost command rounds:
// each round is lost with probability lossP (draw returns uniform values
// in [0, 1)), capped at CommandRetryLimit. The engine charges one
// retransmission period per lost round.
func GeometricRetries(lossP float64, draw func() float64) int {
	retries := 0
	for retries < CommandRetryLimit && draw() < lossP {
		retries++
	}
	return retries
}

// Command is one idempotent activation command: apply activation state
// Active under ballot Epoch as sequence number Seq. The (Epoch, Seq) pair
// makes redelivery harmless — the replica proxy deduplicates.
type Command struct {
	Epoch  uint64
	Seq    uint64
	Active bool
}

// ackState values for a sequencer slot.
const (
	ackUnknown  int8 = -1
	ackInactive int8 = 0
	ackActive   int8 = 1
)

// slot is one replica's entry in the leader's command table.
type slot struct {
	cmd     Command
	nextAt  int64 // next send time; 0 sends immediately (fresh command)
	backoff int64 // gap after the next failure, doubling up to policy.Max
	pending bool
	acked   int8
}

// CommandSequencer is the leader-side machine of the acknowledged command
// protocol: it tracks, per replica slot, the last acknowledged activation
// state and the unacknowledged command in flight, issues fresh (epoch,
// seq, active) commands when the wanted state changes, and schedules
// retransmissions with capped exponential backoff. Time is int64 in the
// caller's unit; the policy must use the same unit.
type CommandSequencer struct {
	policy   RetryPolicy
	epoch    uint64
	seq      uint64
	k        int
	slots    []slot
	pendingN int
}

// NewCommandSequencer builds a sequencer over numPEs × k replica slots.
// BeginEpoch must be called before the first Step.
func NewCommandSequencer(numPEs, k int, policy RetryPolicy) *CommandSequencer {
	s := &CommandSequencer{policy: policy, k: k, slots: make([]slot, numPEs*k)}
	for i := range s.slots {
		s.slots[i].acked = ackUnknown
	}
	return s
}

// BeginEpoch starts issuing under a fresh ballot: the sequence space and
// the whole command table reset, so a new leader re-establishes every
// replica's activation state from scratch rather than trusting acks
// granted to a predecessor.
func (s *CommandSequencer) BeginEpoch(epoch uint64) {
	s.epoch = epoch
	s.seq = 0
	s.pendingN = 0
	for i := range s.slots {
		s.slots[i] = slot{acked: ackUnknown}
	}
}

// DropPending discards the in-flight commands without forgetting
// acknowledged state — what a deposed leader does on step-down. (Its next
// claim resets the table anyway via BeginEpoch.)
func (s *CommandSequencer) DropPending() {
	for i := range s.slots {
		s.slots[i].pending = false
	}
	s.pendingN = 0
}

// Epoch returns the ballot commands are currently issued under.
func (s *CommandSequencer) Epoch() uint64 { return s.epoch }

// Pending returns the number of replica slots with an unacknowledged
// command outstanding — zero once the leader's view has converged.
func (s *CommandSequencer) Pending() int { return s.pendingN }

// Step reconciles one replica slot against the wanted activation state at
// time now. send reports the returned command should be transmitted now
// (false when the slot is converged or backing off between retries), and
// retry reports the transmission is a retransmission. The caller reports
// the transmission's outcome with Acked or Failed.
func (s *CommandSequencer) Step(pe, k int, want bool, now int64) (cmd Command, send, retry bool) {
	sl := &s.slots[pe*s.k+k]
	wantAck := ackInactive
	if want {
		wantAck = ackActive
	}
	if sl.acked == wantAck {
		if sl.pending { // a pending command the new configuration superseded
			sl.pending = false
			s.pendingN--
		}
		return Command{}, false, false
	}
	if !sl.pending || sl.cmd.Active != want {
		s.seq++
		if !sl.pending {
			s.pendingN++
			sl.pending = true
		}
		sl.cmd = Command{Epoch: s.epoch, Seq: s.seq, Active: want}
		sl.nextAt = 0
		sl.backoff = s.policy.Min
	}
	if now < sl.nextAt {
		return Command{}, false, false
	}
	return sl.cmd, true, sl.nextAt != 0
}

// Acked marks the slot's in-flight command acknowledged: the commanded
// activation state is now the slot's known state. It is the right form
// for synchronous transports, where the ack answers the transmission
// that just happened; asynchronous transports use AckedMatch.
func (s *CommandSequencer) Acked(pe, k int) {
	sl := &s.slots[pe*s.k+k]
	if !sl.pending {
		return
	}
	if sl.cmd.Active {
		sl.acked = ackActive
	} else {
		sl.acked = ackInactive
	}
	sl.pending = false
	s.pendingN--
}

// AckedMatch marks the slot acknowledged only when the acknowledgement
// names the slot's in-flight command exactly: issued under the current
// ballot with the same sequence number. Asynchronous transports need
// this form — a duplicate command re-acknowledged by the replica proxy
// carries the sequence of the last applied command, and a stale re-ack
// arriving late must not complete a newer command still in flight. It
// reports whether the ack was applied.
func (s *CommandSequencer) AckedMatch(pe, k int, epoch, seq uint64) bool {
	sl := &s.slots[pe*s.k+k]
	if !sl.pending || epoch != s.epoch || seq != sl.cmd.Seq {
		return false
	}
	s.Acked(pe, k)
	return true
}

// AckedState returns the slot's last acknowledged activation state and
// whether any state has been acknowledged at all in the current epoch. A
// migration sequencer driven over this protocol polls it to learn when a
// slot has converged to the wave's wanted state — whether through an ack
// the caller just applied or one from an earlier scan.
func (s *CommandSequencer) AckedState(pe, k int) (active, known bool) {
	sl := &s.slots[pe*s.k+k]
	return sl.acked == ackActive, sl.acked != ackUnknown
}

// ResetSlot forgets everything known about one replica slot — the
// acknowledged activation state and any in-flight command — returning it
// to the post-BeginEpoch unknown state, so the next Step issues a fresh
// command. The leader calls it when a host restarts under a new
// incarnation: the replica's proxy state died with the old process, so
// acks granted by the previous incarnation no longer describe it.
func (s *CommandSequencer) ResetSlot(pe, k int) {
	sl := &s.slots[pe*s.k+k]
	if sl.pending {
		s.pendingN--
	}
	*sl = slot{acked: ackUnknown}
}

// Failed schedules the slot's retransmission: the next attempt waits the
// current backoff, which then doubles up to the policy's ceiling.
func (s *CommandSequencer) Failed(pe, k int, now int64) {
	sl := &s.slots[pe*s.k+k]
	sl.nextAt = now + sl.backoff
	sl.backoff = s.policy.Next(sl.backoff)
}

// Disposition is a ProxyState ruling on an incoming command.
type Disposition int

const (
	// CmdStale: the command's ballot is below the adopted one — refuse and
	// NACK, returning the adopted ballot so the sender re-claims above it.
	CmdStale Disposition = iota
	// CmdDuplicate: same ballot, sequence already applied — acknowledge
	// again without re-applying (a lost ack costs one retransmission).
	CmdDuplicate
	// CmdApplied: accepted; the proxy state advanced and the caller applies
	// the command's effect.
	CmdApplied
)

// ProxyState is the replica-side idempotency state of the command
// protocol: the highest adopted ballot and the last command sequence
// applied within it. The zero value is a proxy that has adopted nothing.
type ProxyState struct {
	Epoch uint64
	Seq   uint64
}

// Admit judges command (epoch, seq) against the proxy state and advances
// it when the command is accepted: higher ballots are adopted (resetting
// the sequence space), duplicates within the current ballot re-acknowledge
// without applying, stale ballots are refused.
func (p *ProxyState) Admit(epoch, seq uint64) Disposition {
	if epoch < p.Epoch {
		return CmdStale
	}
	if epoch > p.Epoch {
		p.Epoch = epoch
		p.Seq = 0
	} else if seq <= p.Seq {
		return CmdDuplicate
	}
	p.Seq = seq
	return CmdApplied
}

// Adopt judges a non-command message's ballot (the leader's election
// view): higher ballots are adopted, resetting the sequence space; a stale
// ballot is refused — a deposed leader cannot move the lease.
func (p *ProxyState) Adopt(epoch uint64) bool {
	if epoch < p.Epoch {
		return false
	}
	if epoch > p.Epoch {
		p.Epoch = epoch
		p.Seq = 0
	}
	return true
}

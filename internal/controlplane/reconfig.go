package controlplane

// Live reconfiguration: the pure planning and sequencing machinery that
// turns a strategy diff (two per-(PE, replica) activation patterns) into an
// ordered flip plan whose every intermediate state preserves the internal-
// completeness floor.
//
// The ordering invariant is two global waves: first every activation, then
// every deactivation. Between the waves the live pattern is the union of
// the old and new patterns. Under the pessimistic failure model the FIC of
// a configuration is monotone in the activation pattern — Φ of a pair only
// flips 0 → 1 when both replicas become active, and a Φ flip only adds
// tuples to every downstream Δ̂ term (selectivities are non-negative) — so
// IC(old ∪ new) ≥ max(IC(old), IC(new)) ≥ min(IC(old), IC(new)): no
// intermediate step can dip below the weaker endpoint, which is the
// ic-floor-during-migration invariant the chaos and model checkers verify.
// Activate-before-deactivate per PE follows a fortiori from the wave order.

// FlipOp is one replica-slot activation flip of a reconfiguration plan.
type FlipOp struct {
	PE, K    int
	Activate bool
}

// ReconfigPlanner computes ordered flip plans from activation-pattern
// diffs. The zero value is ready; the op buffer is reused across calls, so
// a returned plan is only valid until the next Plan.
type ReconfigPlanner struct {
	ops []FlipOp
}

// Plan returns the ordered flips that transform pattern old into pattern
// new (both indexed [pe][k]): all activations first, then all
// deactivations, each group in (PE, replica) order. Slots equal in both
// patterns produce no op; an empty plan means the patterns already match.
func (p *ReconfigPlanner) Plan(old, new [][]bool) []FlipOp {
	p.ops = p.ops[:0]
	for pe := range new {
		for k := range new[pe] {
			if new[pe][k] && !old[pe][k] {
				p.ops = append(p.ops, FlipOp{PE: pe, K: k, Activate: true})
			}
		}
	}
	for pe := range new {
		for k := range new[pe] {
			if !new[pe][k] && old[pe][k] {
				p.ops = append(p.ops, FlipOp{PE: pe, K: k, Activate: false})
			}
		}
	}
	return p.ops
}

// Union writes old ∪ new into dst (allocating when dst is nil or misshaped)
// and returns it: the pattern live between the two waves.
func Union(dst, old, new [][]bool) [][]bool {
	if len(dst) != len(new) {
		dst = make([][]bool, len(new))
	}
	for pe := range new {
		if len(dst[pe]) != len(new[pe]) {
			dst[pe] = make([]bool, len(new[pe]))
		}
		for k := range new[pe] {
			dst[pe][k] = old[pe][k] || new[pe][k]
		}
	}
	return dst
}

// Migration waves.
const (
	// WaveIdle: no migration in flight.
	WaveIdle = -1
	// WaveActivate: the union pattern is being established — every slot the
	// new pattern adds is commanded active; nothing is deactivated yet.
	WaveActivate = 0
	// WaveDeactivate: every new-pattern slot is confirmed active; the slots
	// only the old pattern used are commanded inactive.
	WaveDeactivate = 1
)

// MigrationSequencer is the leader-side wave machine of the IC-safe
// migration protocol. It owns no transport: the caller keeps driving its
// CommandSequencer from Want (the activation state each slot should have
// right now) and feeds confirmed state changes back through Applied; the
// sequencer advances from the activation wave to the deactivation wave
// only when every slot the new pattern adds has been confirmed active, so
// at no point is a still-needed slot down. A sequencer is not safe for
// concurrent use. The zero value is idle; Want before any Begin reports
// false for every slot.
type MigrationSequencer struct {
	numPEs, k int
	old       []bool // pattern before the migration, flattened pe*k+k
	target    []bool // pattern the migration establishes
	need      []bool // slots awaiting confirmation in the current wave
	needN     int
	wave      int
	began     bool
}

// NewMigrationSequencer builds a sequencer over numPEs × k replica slots.
func NewMigrationSequencer(numPEs, k int) *MigrationSequencer {
	n := numPEs * k
	return &MigrationSequencer{
		numPEs: numPEs,
		k:      k,
		old:    make([]bool, n),
		target: make([]bool, n),
		need:   make([]bool, n),
		wave:   WaveIdle,
	}
}

// Begin starts migrating from pattern old to pattern new (both [pe][k]).
// A migration already in flight is superseded: its current union becomes
// the old pattern of the new migration, so no still-needed slot is ever
// commanded down by the handover. Begin with equal patterns completes
// immediately (InFlight stays false, Want reports the new pattern).
func (m *MigrationSequencer) Begin(old, new [][]bool) {
	for pe := 0; pe < m.numPEs; pe++ {
		for k := 0; k < m.k; k++ {
			i := pe*m.k + k
			o := old[pe][k]
			if m.wave == WaveActivate {
				o = o || m.target[i]
			}
			m.old[i] = o
			m.target[i] = new[pe][k]
		}
	}
	m.began = true
	m.startWave(WaveActivate)
}

// startWave enters the given wave, collecting the slots whose confirmation
// it waits on, and falls through completed waves immediately.
func (m *MigrationSequencer) startWave(wave int) {
	for ; wave <= WaveDeactivate; wave++ {
		m.needN = 0
		for i := range m.need {
			var n bool
			if wave == WaveActivate {
				n = m.target[i] && !m.old[i]
			} else {
				n = m.old[i] && !m.target[i]
			}
			m.need[i] = n
			if n {
				m.needN++
			}
		}
		if m.needN > 0 {
			m.wave = wave
			return
		}
	}
	m.wave = WaveIdle
}

// InFlight reports whether a migration is between its first flip and its
// last confirmation.
func (m *MigrationSequencer) InFlight() bool { return m.wave != WaveIdle }

// Wave returns the current wave (WaveIdle when no migration is in flight).
func (m *MigrationSequencer) Wave() int { return m.wave }

// Want returns the activation state slot (pe, k) should have right now:
// the old ∪ new union during the activation wave, the new pattern once the
// deactivation wave starts (and after the migration completes).
func (m *MigrationSequencer) Want(pe, k int) bool {
	i := pe*m.k + k
	if m.wave == WaveActivate {
		return m.target[i] || m.old[i]
	}
	return m.target[i]
}

// Applied reports a confirmed activation-state change (an acknowledged
// command). When the last awaited confirmation of the activation wave
// arrives, the sequencer advances to the deactivation wave — Want flips
// for the old-only slots — and when the deactivation wave drains, the
// migration completes. It returns true when this call advanced a wave.
func (m *MigrationSequencer) Applied(pe, k int, active bool) bool {
	if m.wave == WaveIdle {
		return false
	}
	i := pe*m.k + k
	if !m.need[i] {
		return false
	}
	if active != (m.wave == WaveActivate) {
		return false
	}
	m.need[i] = false
	m.needN--
	if m.needN > 0 {
		return false
	}
	m.startWave(m.wave + 1)
	return true
}

// Abort drops an in-flight migration without forgetting its target: Want
// keeps reporting the new pattern. A deposed leader calls it on step-down —
// the successor re-plans from its own applied view, and the IC floor is
// safe because the union pattern this leader may have left behind
// dominates both endpoints.
func (m *MigrationSequencer) Abort() {
	m.wave = WaveIdle
	m.needN = 0
	for i := range m.need {
		m.need[i] = false
	}
}

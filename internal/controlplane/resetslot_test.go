package controlplane

import "testing"

// TestResetSlotForgetsAckedState covers the host-restart path: after a
// slot converged, ResetSlot returns it to unknown, so the next Step
// issues a fresh command even though the wanted state never changed.
func TestResetSlotForgetsAckedState(t *testing.T) {
	s := NewCommandSequencer(2, 2, RetryPolicy{Min: 10, Max: 80})
	s.BeginEpoch(PackBallot(1, 0))

	cmd, send, _ := s.Step(1, 0, true, 0)
	if !send {
		t.Fatal("fresh slot should send")
	}
	s.Acked(1, 0)
	if _, send, _ := s.Step(1, 0, true, 0); send {
		t.Fatal("converged slot should stay quiet")
	}

	s.ResetSlot(1, 0)
	cmd2, send, retry := s.Step(1, 0, true, 0)
	if !send || retry {
		t.Fatalf("reset slot: send=%v retry=%v, want a fresh send", send, retry)
	}
	if cmd2.Seq <= cmd.Seq {
		t.Fatalf("reset slot reissued seq %d after %d; must advance", cmd2.Seq, cmd.Seq)
	}
	// The untouched neighbour slot is unaffected.
	s.Acked(1, 0)
	if got := s.Pending(); got != 0 {
		t.Fatalf("pending = %d after ack, want 0", got)
	}
}

// TestResetSlotClearsPending covers resetting a slot with a command in
// flight: the pending count drops and the reissued command supersedes the
// lost one.
func TestResetSlotClearsPending(t *testing.T) {
	s := NewCommandSequencer(1, 1, RetryPolicy{Min: 10, Max: 80})
	s.BeginEpoch(PackBallot(1, 0))

	if _, send, _ := s.Step(0, 0, true, 0); !send {
		t.Fatal("fresh slot should send")
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	s.ResetSlot(0, 0)
	if s.Pending() != 0 {
		t.Fatalf("pending after reset = %d, want 0", s.Pending())
	}
	if _, send, retry := s.Step(0, 0, true, 5); !send || retry {
		t.Fatal("reset slot must reissue immediately as a fresh command")
	}
}

package controlplane

import "testing"

// fuzzReader consumes the fuzz input as a bounded byte stream; exhausted
// input reads zero, so every prefix of an interesting input is interesting.
type fuzzReader struct {
	data []byte
	pos  int
}

func (r *fuzzReader) byte() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *fuzzReader) intn(n int) int { return int(r.byte()) % n }

// FuzzControlPlane is the differential fuzz harness of the control-plane
// kernel: the same machines driven the way the simulation engine drives
// them and the way the live runtime drives them must produce identical
// decision sequences, and the protocol invariants (unique epochs, at-most-
// once command application, convergence) must hold under arbitrary
// schedules. Divergence between the two runtimes' control decisions is
// structurally excluded by sharing the machines; this harness guards the
// remaining surface — the adapters' feeding conventions.
func FuzzControlPlane(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0x80, 0x40, 0x20, 0x10, 0xaa, 0x55, 0xcc, 0x33})
	f.Add([]byte{7, 7, 7, 7, 200, 200, 1, 1, 1, 90, 90, 90, 3, 250, 60, 60, 60, 60, 5, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &fuzzReader{data: data}
		fuzzMonitorDifferential(t, r)
		fuzzElectorDifferential(t, r)
		fuzzSequencerProxy(t, r)
		fuzzFailSafeDifferential(t, r)
	})
}

// fuzzMonitorDifferential feeds one RateMonitor the engine way (per-event
// float accumulation) and a second the live way (integer window totals
// accumulated once per scan) and asserts the decision sequences — selected
// configuration wherever the hysteresis fires — are identical. Counts are
// small integers, so both accumulation orders are exact in float64.
func fuzzMonitorDifferential(t *testing.T, r *fuzzReader) {
	numCfgs := 1 + r.intn(4)
	numSources := 1 + r.intn(3)
	rates := make([][]float64, numCfgs)
	maxCfg, maxSum := 0, -1.0
	for c := range rates {
		rates[c] = make([]float64, numSources)
		sum := 0.0
		for s := range rates[c] {
			rates[c][s] = float64(1 + r.intn(64))
			sum += rates[c][s]
		}
		if sum > maxSum {
			maxSum, maxCfg = sum, c
		}
	}
	engine := NewRateMonitor(rates, maxCfg)
	live := NewRateMonitor(rates, maxCfg)

	windows := 1 + r.intn(8)
	for w := 0; w < windows; w++ {
		elapsed := float64(1 + r.intn(4))
		for s := 0; s < numSources; s++ {
			total := 0
			events := r.intn(4)
			for e := 0; e < events; e++ {
				n := r.intn(32)
				engine.Accumulate(s, float64(n))
				total += n
			}
			live.Accumulate(s, float64(total))
		}
		cfgE := engine.Scan(elapsed)
		cfgL := live.Select(live.Measure(elapsed))
		if cfgE != cfgL {
			t.Fatalf("window %d: engine-style selected %d, live-style %d", w, cfgE, cfgL)
		}
		if cfgE != engine.Applied() {
			engine.SetApplied(cfgE)
			live.SetApplied(cfgL)
		}
		if engine.Applied() != live.Applied() {
			t.Fatalf("window %d: applied diverged %d vs %d", w, engine.Applied(), live.Applied())
		}
	}
}

// fuzzElectorDifferential runs the same heartbeat schedule through two
// elector sets whose clocks differ by a pure unit change (steps vs
// nanosecond-like scale) and asserts identical action sequences — the lease
// rule must be unit-invariant. It also asserts no two claims anywhere ever
// produce the same epoch.
func fuzzElectorDifferential(t *testing.T, r *fuzzReader) {
	const scale = int64(1_000_000)
	peers := 2 + r.intn(3)
	ttl := int64(1 + r.intn(8))
	a := make([]*LeaseElector, peers)
	b := make([]*LeaseElector, peers)
	for i := range a {
		a[i] = NewLeaseElector(i, peers, ttl, 0)
		b[i] = NewLeaseElector(i, peers, ttl*scale, 0)
	}
	epochs := make(map[uint64]bool)
	steps := 4 + r.intn(16)
	for now := int64(1); now <= int64(steps); now++ {
		heard := r.byte()
		for i := 0; i < peers; i++ {
			for j := 0; j < peers; j++ {
				if i != j && heard&(1<<uint(j)) != 0 {
					a[i].HearPeer(j, now)
					b[i].HearPeer(j, now*scale)
				}
			}
		}
		for i := 0; i < peers; i++ {
			actA := a[i].Evaluate(now)
			actB := b[i].Evaluate(now * scale)
			if actA != actB {
				t.Fatalf("step %d instance %d: action %v at step scale, %v at nano scale", now, i, actA, actB)
			}
			switch actA {
			case LeaseClaim:
				ea, eb := a[i].Claim(), b[i].Claim()
				if ea != eb {
					t.Fatalf("step %d instance %d: claimed %d vs %d", now, i, ea, eb)
				}
				if epochs[ea] {
					t.Fatalf("step %d instance %d: epoch %d claimed twice", now, i, ea)
				}
				epochs[ea] = true
				if BallotHolder(ea) != i {
					t.Fatalf("epoch %d claimed by %d carries holder %d", ea, i, BallotHolder(ea))
				}
			case LeaseYield:
				a[i].StepDown()
				b[i].StepDown()
			}
			// Gossip the watermark the way heartbeats do.
			for j := 0; j < peers; j++ {
				if j != i {
					a[j].Observe(a[i].MaxSeen())
					b[j].Observe(b[i].MaxSeen())
				}
			}
		}
	}
}

// fuzzSequencerProxy drives a leader sequencer against per-slot replica
// proxies through an arbitrary wanted-state and loss schedule, then lets
// the channel heal and asserts the protocol converges with every proxy in
// the wanted state and every (epoch, seq) applied at most once.
func fuzzSequencerProxy(t *testing.T, r *fuzzReader) {
	numPEs := 1 + r.intn(3)
	k := 2
	min := int64(1 + r.intn(4))
	seq := NewCommandSequencer(numPEs, k, RetryPolicy{Min: min, Max: DefaultRetryMaxFactor * min})
	seq.BeginEpoch(PackBallot(1, 0))

	proxies := make([]ProxyState, numPEs*k)
	applied := make([]bool, numPEs*k) // replica-side activation state
	want := make([]bool, numPEs*k)
	for i := range want {
		want[i] = true
	}
	seen := make(map[[2]uint64]bool)

	deliver := func(pe, kk int, now int64, lost bool) {
		cmd, send, _ := seq.Step(pe, kk, want[pe*k+kk], now)
		if !send {
			return
		}
		if lost {
			seq.Failed(pe, kk, now)
			return
		}
		p := &proxies[pe*k+kk]
		switch p.Admit(cmd.Epoch, cmd.Seq) {
		case CmdApplied:
			key := [2]uint64{cmd.Epoch, cmd.Seq}
			if seen[key] {
				t.Fatalf("command (%d, %d) applied twice", cmd.Epoch, cmd.Seq)
			}
			seen[key] = true
			applied[pe*k+kk] = cmd.Active
			seq.Acked(pe, kk)
		case CmdDuplicate:
			seq.Acked(pe, kk)
		case CmdStale:
			t.Fatalf("single-leader run produced a stale command (%d, %d)", cmd.Epoch, cmd.Seq)
		}
	}

	now := int64(0)
	steps := 4 + r.intn(24)
	for s := 0; s < steps; s++ {
		now++
		b := r.byte()
		if b&0x80 != 0 { // flip one slot's wanted state
			idx := int(b&0x7f) % len(want)
			want[idx] = !want[idx]
		}
		lossBits := r.byte()
		for pe := 0; pe < numPEs; pe++ {
			for kk := 0; kk < k; kk++ {
				deliver(pe, kk, now, lossBits&(1<<uint(pe*k+kk)) != 0)
			}
		}
	}
	// Heal the channel: the sequencer must converge within the backoff
	// ceiling times the retry budget.
	for drain := 0; drain < 200 && seq.Pending() > 0; drain++ {
		now++
		for pe := 0; pe < numPEs; pe++ {
			for kk := 0; kk < k; kk++ {
				deliver(pe, kk, now, false)
			}
		}
	}
	if seq.Pending() != 0 {
		t.Fatalf("sequencer failed to converge: %d slots still pending", seq.Pending())
	}
	for i := range want {
		if applied[i] != want[i] {
			t.Fatalf("slot %d converged to %v, want %v", i, applied[i], want[i])
		}
	}
}

// fuzzFailSafeDifferential runs one contact/probe schedule through an
// int64-clock tracker and a float64-clock tracker and asserts identical
// engage decisions — the fail-safe predicate must not depend on the
// runtime's time representation.
func fuzzFailSafeDifferential(t *testing.T, r *fuzzReader) {
	horizon := int64(r.intn(16)) - 1 // -1 disables
	ti := NewFailSafeTracker(horizon, 0)
	tf := NewFailSafeTracker(float64(horizon), 0)
	steps := 4 + r.intn(16)
	for now := int64(1); now <= int64(steps); now++ {
		op := r.byte()
		switch {
		case op&0x3 == 0:
			ti.Contact(now)
			tf.Contact(float64(now))
		case op&0x3 == 1:
			if ti.Clear() != tf.Clear() {
				t.Fatalf("step %d: Clear diverged", now)
			}
		default:
			ei, ef := ti.Engage(now), tf.Engage(float64(now))
			if ei != ef {
				t.Fatalf("step %d: Engage %v on int64 clock, %v on float64 clock", now, ei, ef)
			}
		}
		if ti.Engaged() != tf.Engaged() {
			t.Fatalf("step %d: Engaged diverged", now)
		}
	}
}

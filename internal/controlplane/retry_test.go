package controlplane

import "testing"

// TestCommandRetryCapUnified is the regression pin for the once-duplicated
// retry bounds: the engine's geometric retry draw and the live runtime's
// retransmission backoff both derive from these constants, and the values
// are part of the experiment semantics (changing them changes every figure
// with command loss). Update the expectations only with a deliberate
// protocol change.
func TestCommandRetryCapUnified(t *testing.T) {
	if CommandRetryLimit != 64 {
		t.Fatalf("CommandRetryLimit = %d, want 64", CommandRetryLimit)
	}
	if DefaultRetryMaxFactor != 8 {
		t.Fatalf("DefaultRetryMaxFactor = %d, want 8", DefaultRetryMaxFactor)
	}

	// Even a certain-loss channel stops after the cap.
	draws := 0
	alwaysLost := func() float64 { draws++; return 0 }
	if got := GeometricRetries(1.0, alwaysLost); got != CommandRetryLimit {
		t.Fatalf("GeometricRetries(1.0) = %d, want %d", got, CommandRetryLimit)
	}
	if draws != CommandRetryLimit {
		t.Fatalf("GeometricRetries(1.0) consumed %d draws, want %d", draws, CommandRetryLimit)
	}

	// A lossless channel draws exactly once and retries zero times.
	draws = 0
	neverLost := func() float64 { draws++; return 0.999999 }
	if got := GeometricRetries(0.5, neverLost); got != 0 || draws != 1 {
		t.Fatalf("GeometricRetries(0.5, never lost) = %d after %d draws, want 0 after 1", got, draws)
	}
}

func TestRetryPolicyNext(t *testing.T) {
	p := RetryPolicy{Min: 10, Max: 75}
	tests := []struct {
		cur, want int64
	}{
		{0, 10},  // unset: start at the floor
		{-5, 10}, // defensive: negative treated as unset
		{10, 20},
		{20, 40},
		{40, 75}, // doubling capped at the ceiling
		{75, 75},
	}
	for _, tc := range tests {
		if got := p.Next(tc.cur); got != tc.want {
			t.Errorf("Next(%d) = %d, want %d", tc.cur, got, tc.want)
		}
	}
}

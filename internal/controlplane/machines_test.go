package controlplane

import (
	"math"
	"testing"
)

func TestBallotPacking(t *testing.T) {
	tests := []struct {
		round  uint64
		id     int
		ballot uint64
	}{
		{0, 0, 0},
		{0, 7, 7},
		{1, 0, 256},
		{1, 255, 511},
		{3, 2, 770},
		{1 << 40, 17, 1<<48 | 17},
	}
	for _, tc := range tests {
		if got := PackBallot(tc.round, tc.id); got != tc.ballot {
			t.Errorf("PackBallot(%d, %d) = %d, want %d", tc.round, tc.id, got, tc.ballot)
		}
		if got := BallotRound(tc.ballot); got != tc.round {
			t.Errorf("BallotRound(%d) = %d, want %d", tc.ballot, got, tc.round)
		}
		if got := BallotHolder(tc.ballot); got != tc.id {
			t.Errorf("BallotHolder(%d) = %d, want %d", tc.ballot, got, tc.id)
		}
	}
}

func TestNextBallot(t *testing.T) {
	tests := []struct {
		seen uint64
		id   int
		want uint64
	}{
		{0, 0, PackBallot(1, 0)},
		{0, 3, PackBallot(1, 3)},
		{PackBallot(1, 200), 3, PackBallot(2, 3)},
		{PackBallot(7, 0), 255, PackBallot(8, 255)},
	}
	for _, tc := range tests {
		got := NextBallot(tc.seen, tc.id)
		if got != tc.want {
			t.Errorf("NextBallot(%d, %d) = %d, want %d", tc.seen, tc.id, got, tc.want)
		}
		if got <= tc.seen {
			t.Errorf("NextBallot(%d, %d) = %d is not strictly above seen", tc.seen, tc.id, got)
		}
	}
}

func TestLeaseElectorClaimYield(t *testing.T) {
	const ttl = 10
	// Three instances, all seeded as heard at t=0.
	e := NewLeaseElector(1, 3, ttl, 0)

	// Instance 0 is fresh: a standby holds.
	if got := e.Evaluate(5); got != LeaseHold {
		t.Fatalf("standby with fresh lower peer: Evaluate = %v, want LeaseHold", got)
	}
	// Instance 0 ages out: claim.
	if got := e.Evaluate(11); got != LeaseClaim {
		t.Fatalf("standby with no fresh lower peer: Evaluate = %v, want LeaseClaim", got)
	}
	epoch := e.Claim()
	if epoch != PackBallot(1, 1) {
		t.Fatalf("first claim epoch = %d, want %d", epoch, PackBallot(1, 1))
	}
	if !e.Leading() || e.Epoch() != epoch || e.MaxSeen() != epoch {
		t.Fatalf("after Claim: leading=%v epoch=%d maxSeen=%d", e.Leading(), e.Epoch(), e.MaxSeen())
	}
	// Leading with no fresh lower peer: hold.
	if got := e.Evaluate(12); got != LeaseHold {
		t.Fatalf("leader with no fresh lower peer: Evaluate = %v, want LeaseHold", got)
	}
	// Instance 0 comes back: yield.
	e.HearPeer(0, 12)
	if got := e.Evaluate(13); got != LeaseYield {
		t.Fatalf("leader hearing lower peer: Evaluate = %v, want LeaseYield", got)
	}
	e.StepDown()
	if e.Leading() {
		t.Fatal("leading after StepDown")
	}
	// Higher-id peers never force a yield.
	e.HearPeer(2, 14)
	if got := e.Evaluate(14); got != LeaseHold {
		t.Fatalf("standby with only higher fresh peers: Evaluate = %v, want LeaseHold", got)
	}
}

func TestLeaseElectorReclaimAboveSeen(t *testing.T) {
	e := NewLeaseElector(0, 2, 10, 0)
	first := e.Claim()
	// A higher ballot appears (a peer led while this instance was cut off).
	foreign := PackBallot(5, 1)
	e.Observe(foreign)
	if got := e.Evaluate(1); got != LeaseClaim {
		t.Fatalf("leader below maxSeen: Evaluate = %v, want LeaseClaim", got)
	}
	second := e.Claim()
	if second <= foreign || second <= first {
		t.Fatalf("re-claim %d not above foreign %d and first %d", second, foreign, first)
	}
	if BallotHolder(second) != 0 {
		t.Fatalf("re-claim holder = %d, want 0", BallotHolder(second))
	}
	// Observing lower ballots never lowers the watermark.
	e.Observe(first)
	if e.MaxSeen() != second {
		t.Fatalf("maxSeen = %d after observing lower ballot, want %d", e.MaxSeen(), second)
	}
}

func TestLeaseElectorTTLBoundary(t *testing.T) {
	// lastHeard == now-ttl is still fresh (>= deadline).
	e := NewLeaseElector(1, 2, 10, 0)
	if got := e.Evaluate(10); got != LeaseHold {
		t.Fatalf("peer exactly at TTL: Evaluate = %v, want LeaseHold", got)
	}
	if got := e.Evaluate(11); got != LeaseClaim {
		t.Fatalf("peer one past TTL: Evaluate = %v, want LeaseClaim", got)
	}
}

func TestLowestAlive(t *testing.T) {
	tests := []struct {
		up   []bool
		want int
	}{
		{nil, -1},
		{[]bool{false, false}, -1},
		{[]bool{true, false}, 0},
		{[]bool{false, true, true}, 1},
		{[]bool{false, false, true}, 2},
	}
	for _, tc := range tests {
		if got := LowestAlive(tc.up); got != tc.want {
			t.Errorf("LowestAlive(%v) = %d, want %d", tc.up, got, tc.want)
		}
	}
}

func TestRateMonitorMeasureAndSelect(t *testing.T) {
	// Two configurations over two sources: low = (10, 5), high = (100, 50).
	rates := [][]float64{{10, 5}, {100, 50}}
	m := NewRateMonitor(rates, 1)
	if m.NumSources() != 2 {
		t.Fatalf("NumSources = %d, want 2", m.NumSources())
	}
	if m.Applied() != -1 {
		t.Fatalf("initial Applied = %d, want -1", m.Applied())
	}

	tests := []struct {
		name    string
		windows [2]float64 // tuples over a 2-second window
		want    int
	}{
		{"idle", [2]float64{0, 0}, 0},
		{"low load", [2]float64{18, 8}, 0},
		{"exactly low", [2]float64{20, 10}, 0}, // discount keeps ties dominated
		{"between", [2]float64{40, 8}, 1},
		{"high load", [2]float64{190, 90}, 1},
		{"overshoot", [2]float64{1000, 1000}, 1}, // nothing dominates: MaxConfig
	}
	for _, tc := range tests {
		m.Accumulate(0, tc.windows[0])
		m.Accumulate(1, tc.windows[1])
		if got := m.Scan(2.0); got != tc.want {
			t.Errorf("%s: Scan = %d, want %d", tc.name, got, tc.want)
		}
	}

	// Measure resets the windows and applies the discount.
	m.Accumulate(0, 20)
	got := m.Measure(2.0)
	// Bind the discount to a float64 first: an untyped constant expression
	// would be folded at arbitrary precision and differ by one ulp.
	discount := float64(MeasurementDiscount)
	want := 20.0 / 2.0 * discount
	if got[0] != want || got[1] != 0 {
		t.Fatalf("Measure = %v, want [%v 0]", got, want)
	}
	if m.Measured()[0] != want {
		t.Fatalf("Measured()[0] = %v, want %v", m.Measured()[0], want)
	}
	if next := m.Measure(2.0); next[0] != 0 {
		t.Fatalf("windows not reset: second Measure = %v", next)
	}

	m.SetApplied(1)
	if m.Applied() != 1 {
		t.Fatalf("Applied = %d after SetApplied(1)", m.Applied())
	}
}

func TestRateMonitorResetWindows(t *testing.T) {
	m := NewRateMonitor([][]float64{{10}}, 0)
	m.Accumulate(0, 500)
	m.ResetWindows()
	if got := m.Measure(1.0); got[0] != 0 {
		t.Fatalf("Measure after ResetWindows = %v, want 0", got[0])
	}
}

func TestCommandSequencerLifecycle(t *testing.T) {
	seq := NewCommandSequencer(2, 2, RetryPolicy{Min: 10, Max: 40})
	seq.BeginEpoch(PackBallot(1, 0))

	// Fresh command for a divergent slot.
	cmd, send, retry := seq.Step(0, 0, true, 100)
	if !send || retry {
		t.Fatalf("fresh step: send=%v retry=%v, want true,false", send, retry)
	}
	if cmd.Epoch != PackBallot(1, 0) || cmd.Seq != 1 || !cmd.Active {
		t.Fatalf("fresh command = %+v", cmd)
	}
	if seq.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", seq.Pending())
	}

	// Lost: retransmissions back off 10, 20, 40, 40 (capped).
	seq.Failed(0, 0, 100)
	if _, send, _ := seq.Step(0, 0, true, 105); send {
		t.Fatal("sent during backoff window")
	}
	delays := []int64{}
	now := int64(100)
	for i := 0; i < 4; i++ {
		for {
			now++
			cmd2, send, retry := seq.Step(0, 0, true, now)
			if send {
				if !retry {
					t.Fatalf("retransmission %d not flagged retry", i)
				}
				if cmd2 != cmd {
					t.Fatalf("retransmission %d changed command: %+v != %+v", i, cmd2, cmd)
				}
				break
			}
		}
		delays = append(delays, now)
		seq.Failed(0, 0, now)
	}
	gaps := []int64{delays[1] - delays[0], delays[2] - delays[1], delays[3] - delays[2]}
	wantGaps := []int64{20, 40, 40}
	for i, g := range gaps {
		if g != wantGaps[i] {
			t.Fatalf("backoff gaps = %v, want %v", gaps, wantGaps)
		}
	}

	// Acknowledged: the slot converges and goes quiet.
	seq.Acked(0, 0)
	if seq.Pending() != 0 {
		t.Fatalf("Pending = %d after ack, want 0", seq.Pending())
	}
	if _, send, _ := seq.Step(0, 0, true, now+1000); send {
		t.Fatal("converged slot sent a command")
	}
}

func TestCommandSequencerSupersededCommand(t *testing.T) {
	seq := NewCommandSequencer(1, 1, RetryPolicy{Min: 10, Max: 80})
	seq.BeginEpoch(1 << 8)

	// Activate, lose it, then want deactivation: a fresh command with a new
	// sequence number replaces the in-flight one and resets the backoff.
	first, _, _ := seq.Step(0, 0, true, 0)
	seq.Failed(0, 0, 0)
	second, send, retry := seq.Step(0, 0, false, 1)
	if !send || retry {
		t.Fatalf("superseding step: send=%v retry=%v, want true,false", send, retry)
	}
	if second.Seq <= first.Seq || second.Active {
		t.Fatalf("superseding command = %+v after %+v", second, first)
	}

	// Ack the deactivation, then want deactivation again: converged.
	seq.Acked(0, 0)
	if _, send, _ := seq.Step(0, 0, false, 2); send {
		t.Fatal("converged slot resent")
	}
	// A pending command superseded by a want matching the acked state is
	// dropped without a send.
	third, _, _ := seq.Step(0, 0, true, 3)
	_ = third
	if seq.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", seq.Pending())
	}
	if _, send, _ := seq.Step(0, 0, false, 4); send {
		t.Fatal("slot already acked inactive sent a command")
	}
	if seq.Pending() != 0 {
		t.Fatalf("Pending = %d after supersede-to-acked, want 0", seq.Pending())
	}
}

func TestCommandSequencerEpochAndStepDown(t *testing.T) {
	seq := NewCommandSequencer(1, 2, RetryPolicy{Min: 1, Max: 8})
	seq.BeginEpoch(PackBallot(1, 0))
	seq.Step(0, 0, true, 0)
	seq.Step(0, 1, true, 0)
	seq.Acked(0, 0)

	// Step-down drops the in-flight command but keeps the acked state.
	seq.DropPending()
	if seq.Pending() != 0 {
		t.Fatalf("Pending = %d after DropPending, want 0", seq.Pending())
	}
	if _, send, _ := seq.Step(0, 0, true, 1); send {
		t.Fatal("acked slot resent after DropPending")
	}

	// A new epoch forgets everything: the slot re-issues under the new
	// ballot with sequence numbers restarting.
	next := PackBallot(2, 0)
	seq.BeginEpoch(next)
	if seq.Epoch() != next {
		t.Fatalf("Epoch = %d, want %d", seq.Epoch(), next)
	}
	cmd, send, _ := seq.Step(0, 0, true, 2)
	if !send || cmd.Epoch != next || cmd.Seq != 1 {
		t.Fatalf("post-BeginEpoch command = %+v send=%v", cmd, send)
	}
}

func TestProxyStateAdmit(t *testing.T) {
	var p ProxyState
	tests := []struct {
		epoch, seq uint64
		want       Disposition
	}{
		{256, 1, CmdApplied},
		{256, 1, CmdDuplicate}, // redelivery
		{256, 2, CmdApplied},
		{256, 1, CmdDuplicate}, // late redelivery of an old seq
		{255, 9, CmdStale},     // deposed leader
		{512, 1, CmdApplied},   // new ballot resets the sequence space
		{512, 1, CmdDuplicate},
		{256, 3, CmdStale},
	}
	for i, tc := range tests {
		if got := p.Admit(tc.epoch, tc.seq); got != tc.want {
			t.Fatalf("step %d: Admit(%d, %d) = %v, want %v", i, tc.epoch, tc.seq, got, tc.want)
		}
	}
	if p.Epoch != 512 || p.Seq != 1 {
		t.Fatalf("final proxy state = %+v", p)
	}
}

func TestProxyStateAdopt(t *testing.T) {
	p := ProxyState{Epoch: 512, Seq: 7}
	if p.Adopt(256) {
		t.Fatal("adopted a stale ballot")
	}
	if !p.Adopt(512) || p.Seq != 7 {
		t.Fatalf("same-ballot adopt: state = %+v", p)
	}
	if !p.Adopt(768) || p.Epoch != 768 || p.Seq != 0 {
		t.Fatalf("higher-ballot adopt: state = %+v", p)
	}
}

func TestSilent(t *testing.T) {
	if Silent(int64(0), int64(5), int64(-1)) {
		t.Fatal("negative horizon engaged")
	}
	if Silent(0.0, 4.9, 5.0) {
		t.Fatal("engaged before horizon")
	}
	if !Silent(0.0, 5.0, 5.0) {
		t.Fatal("not engaged exactly at horizon")
	}
	if !Silent(int64(10), int64(25), int64(15)) {
		t.Fatal("not engaged past horizon")
	}
}

func TestFailSafeTracker(t *testing.T) {
	ft := NewFailSafeTracker(5.0, 0.0)
	if ft.Engage(4.0) {
		t.Fatal("engaged before horizon")
	}
	if !ft.Engage(5.0) {
		t.Fatal("did not engage at horizon")
	}
	if ft.Engage(6.0) {
		t.Fatal("engaged twice without a Clear")
	}
	if !ft.Engaged() {
		t.Fatal("not engaged after Engage")
	}
	if !ft.Clear() {
		t.Fatal("Clear did not report the engaged state")
	}
	if ft.Clear() {
		t.Fatal("second Clear reported engaged")
	}
	// Contact restarts the horizon.
	ft.Contact(10.0)
	if ft.Engage(14.0) {
		t.Fatal("engaged before the restarted horizon")
	}
	if !ft.Engage(15.0) {
		t.Fatal("did not engage after the restarted horizon")
	}

	// Disabled tracker never engages.
	off := NewFailSafeTracker[int64](-1, 0)
	if off.Engage(math.MaxInt64) {
		t.Fatal("disabled tracker engaged")
	}
}

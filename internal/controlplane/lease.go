package controlplane

// ballotIDBits is the width of the instance-id field in a packed ballot.
const ballotIDBits = 8

// MaxControllers is the largest control-plane size the ballot encoding
// carries: the low ballotIDBits bits hold the claiming instance's id.
const MaxControllers = 1 << ballotIDBits

// PackBallot packs a claim round and an instance id into one ballot epoch:
// (round << 8) | id. Rounds order ballots globally; the id field makes
// concurrent claims by different instances distinct, so no two instances
// can ever claim the same epoch.
func PackBallot(round uint64, id int) uint64 {
	return round<<ballotIDBits | uint64(id)
}

// BallotRound extracts the claim round of a ballot.
func BallotRound(ballot uint64) uint64 { return ballot >> ballotIDBits }

// BallotHolder extracts the claiming instance's id from a ballot.
func BallotHolder(ballot uint64) int { return int(ballot & (MaxControllers - 1)) }

// NextBallot returns instance id's lowest ballot strictly above every
// ballot in seen — the claim rule that lets replicas arbitrate concurrent
// leaders by epoch alone.
func NextBallot(seen uint64, id int) uint64 {
	return PackBallot(BallotRound(seen)+1, id)
}

// LeaseAction is a LeaseElector decision.
type LeaseAction int

const (
	// LeaseHold: no transition — keep the current role.
	LeaseHold LeaseAction = iota
	// LeaseClaim: take (or re-take) the lease under a fresh ballot. The
	// caller invokes Claim and performs its claim side effects (resetting
	// its sequencer, inheriting the applied configuration, recording the
	// grant).
	LeaseClaim
	// LeaseYield: a lower-id peer is fresh — step down. The caller invokes
	// StepDown and drops its pending commands.
	LeaseYield
)

// LeaseElector is the decentralized lease machine of one controller
// instance: the lowest-id instance heard fresh within the TTL holds the
// lease, claims carry ballots strictly above everything the claimant has
// seen, and a leader that learns of a higher ballot re-claims above it.
// Time is int64 in whatever unit the caller uses consistently (the live
// runtime feeds unix nanoseconds, models can feed abstract steps).
type LeaseElector struct {
	id        int
	ttl       int64
	lastHeard []int64
	epoch     uint64
	maxSeen   uint64
	leading   bool
}

// NewLeaseElector builds the elector of instance id among peers total
// instances. Every peer starts as heard at now, so standbys do not contest
// an initial grant before the first heartbeat round.
func NewLeaseElector(id, peers int, ttl, now int64) *LeaseElector {
	e := &LeaseElector{id: id, ttl: ttl, lastHeard: make([]int64, peers)}
	for j := range e.lastHeard {
		e.lastHeard[j] = now
	}
	return e
}

// HearPeer records peer j's heartbeat at time at (already aged by any
// transport delay). The latest report wins, mirroring a mailbox drain.
func (e *LeaseElector) HearPeer(j int, at int64) { e.lastHeard[j] = at }

// Observe lifts the highest-ballot watermark — peer gossip and command
// NACKs feed it.
func (e *LeaseElector) Observe(ballot uint64) {
	if ballot > e.maxSeen {
		e.maxSeen = ballot
	}
}

// Epoch returns the ballot of the latest claim.
func (e *LeaseElector) Epoch() uint64 { return e.epoch }

// MaxSeen returns the highest ballot observed anywhere.
func (e *LeaseElector) MaxSeen() uint64 { return e.maxSeen }

// Leading reports whether the instance currently believes it holds the
// lease.
func (e *LeaseElector) Leading() bool { return e.leading }

// Evaluate applies the lease rule at time now: yield when a lower-id peer
// was heard within the TTL, claim when none was, and re-claim when leading
// under a ballot below the highest seen (a peer led while this instance
// was down or cut off; re-claiming above it wins its followers back).
func (e *LeaseElector) Evaluate(now int64) LeaseAction {
	deadline := now - e.ttl
	lowerFresh := false
	for j := 0; j < e.id; j++ {
		if e.lastHeard[j] >= deadline {
			lowerFresh = true
			break
		}
	}
	switch {
	case lowerFresh && e.leading:
		return LeaseYield
	case !lowerFresh && !e.leading:
		return LeaseClaim
	case e.leading && e.maxSeen > e.epoch:
		return LeaseClaim
	}
	return LeaseHold
}

// Claim takes the lease under a fresh ballot strictly above every ballot
// seen, and returns it.
func (e *LeaseElector) Claim() uint64 {
	e.epoch = NextBallot(e.maxSeen, e.id)
	e.maxSeen = e.epoch
	e.leading = true
	return e.epoch
}

// StepDown drops the lease.
func (e *LeaseElector) StepDown() { e.leading = false }

// LowestAlive returns the lowest index with up[i] true, or -1 when none
// is — the same lowest-id-wins rule as the lease, in the instantaneous-
// knowledge form a single-process runtime (the engine) can use directly.
func LowestAlive(up []bool) int {
	for i, u := range up {
		if u {
			return i
		}
	}
	return -1
}

package controlplane

import "testing"

// TestLeaseSnapshotRestore branches one elector into two futures and
// asserts restore returns it to the branch point exactly.
func TestLeaseSnapshotRestore(t *testing.T) {
	e := NewLeaseElector(1, 3, 4, 0)
	e.HearPeer(0, 2)
	e.Observe(PackBallot(3, 0))

	snap := e.Snapshot()
	// Future A: peer 0 goes silent, instance 1 claims.
	if act := e.Evaluate(10); act != LeaseClaim {
		t.Fatalf("future A: Evaluate = %v, want claim", act)
	}
	epochA := e.Claim()

	e.Restore(snap)
	if e.Leading() {
		t.Fatalf("restore kept the lease from future A")
	}
	if e.Epoch() != 0 || e.MaxSeen() != PackBallot(3, 0) {
		t.Fatalf("restore: epoch=%d maxSeen=%d, want 0, %d", e.Epoch(), e.MaxSeen(), PackBallot(3, 0))
	}
	// Future B: peer 0 stays fresh, instance 1 holds.
	e.HearPeer(0, 9)
	if act := e.Evaluate(10); act != LeaseHold {
		t.Fatalf("future B: Evaluate = %v, want hold", act)
	}
	// Replaying future A after a second restore claims the same epoch.
	e.Restore(snap)
	if epoch := e.Claim(); epoch != epochA {
		t.Fatalf("replayed claim got epoch %d, want %d", epoch, epochA)
	}
	// The snapshot's slice must not alias the elector's.
	e.HearPeer(0, 99)
	if snap.LastHeard[0] == 99 {
		t.Fatalf("snapshot aliases the elector's lastHeard buffer")
	}
}

// TestLeaseHashTimeShift asserts the canonical fingerprint is invariant
// under a uniform time shift — the property that lets the explorer merge
// states reached at different absolute depths.
func TestLeaseHashTimeShift(t *testing.T) {
	const shift = 1000
	a := NewLeaseElector(0, 2, 3, 0)
	b := NewLeaseElector(0, 2, 3, shift)
	a.HearPeer(1, 5)
	b.HearPeer(1, 5+shift)
	a.Observe(7 << 8)
	b.Observe(7 << 8)

	fa, fb := NewFingerprint(), NewFingerprint()
	a.Hash(fa, 6)
	b.Hash(fb, 6+shift)
	if fa.Sum() != fb.Sum() {
		t.Fatalf("time-shifted electors hash differently: %x vs %x", fa.Sum(), fb.Sum())
	}

	// Ages beyond TTL+1 are all equivalent.
	fa.Reset()
	fb.Reset()
	a.Hash(fa, 100)
	b.Hash(fb, 100+shift+12345)
	if fa.Sum() != fb.Sum() {
		t.Fatalf("stale-past-TTL electors hash differently: %x vs %x", fa.Sum(), fb.Sum())
	}

	// A fresh heartbeat inside the TTL must change the hash.
	fb.Reset()
	b.HearPeer(1, 100+shift+12345)
	b.Hash(fb, 100+shift+12345)
	if fa.Sum() == fb.Sum() {
		t.Fatalf("fresh heartbeat did not change the fingerprint")
	}
}

// TestSequencerSnapshotRestore exercises branch-and-restore across the
// retransmission machinery, including WouldSend/Superseded agreement with
// Step.
func TestSequencerSnapshotRestore(t *testing.T) {
	s := NewCommandSequencer(2, 2, RetryPolicy{Min: 2, Max: 8})
	s.BeginEpoch(PackBallot(1, 0))

	// Issue a command on slot (0,0) and lose it.
	cmd, send, _ := s.Step(0, 0, true, 1)
	if !send {
		t.Fatalf("fresh slot did not send")
	}
	s.Failed(0, 0, 1)

	snap := s.Snapshot()
	if s.WouldSend(0, 0, true, 2) {
		t.Fatalf("WouldSend during backoff")
	}
	if !s.WouldSend(0, 0, true, 3) {
		t.Fatalf("WouldSend false once the backoff elapsed")
	}

	// Future A: the retransmission is acknowledged.
	cmd2, send2, retry := s.Step(0, 0, true, 3)
	if !send2 || !retry || cmd2 != cmd {
		t.Fatalf("retransmission: send=%v retry=%v cmd=%+v, want resend of %+v", send2, retry, cmd2, cmd)
	}
	s.Acked(0, 0)
	if s.Pending() != 0 {
		t.Fatalf("pending %d after ack, want 0", s.Pending())
	}

	// Restore to the branch point: the command is pending again.
	s.Restore(snap)
	if s.Pending() != 1 {
		t.Fatalf("pending %d after restore, want 1", s.Pending())
	}
	// Future B: ack the activate, issue a deactivate, then flip the wanted
	// state back — the pending deactivate is superseded by want=true.
	if _, send3, _ := s.Step(0, 0, true, 3); !send3 {
		t.Fatalf("restored slot did not resend")
	}
	s.Acked(0, 0)
	if _, send4, _ := s.Step(0, 0, false, 4); !send4 {
		t.Fatalf("deactivate did not send")
	}
	s.Failed(0, 0, 4)
	if !s.Superseded(0, 0, true) {
		t.Fatalf("pending deactivate not superseded by want=true")
	}
	if s.Superseded(0, 0, false) {
		t.Fatalf("pending deactivate superseded by its own wanted state")
	}
	if _, send5, _ := s.Step(0, 0, true, 5); send5 {
		t.Fatalf("superseded slot sent a command")
	}
	if s.Pending() != 0 {
		t.Fatalf("superseded slot not cleared: pending %d", s.Pending())
	}
}

// TestSequencerHashCanonical asserts sequencer fingerprints are invariant
// under time shifts and sensitive to backoff state.
func TestSequencerHashCanonical(t *testing.T) {
	build := func(base int64) *CommandSequencer {
		s := NewCommandSequencer(1, 2, RetryPolicy{Min: 2, Max: 8})
		s.BeginEpoch(PackBallot(1, 0))
		s.Step(0, 0, true, base+1)
		s.Failed(0, 0, base+1)
		return s
	}
	a, b := build(0), build(500)
	fa, fb := NewFingerprint(), NewFingerprint()
	a.Hash(fa, 2)
	b.Hash(fb, 502)
	if fa.Sum() != fb.Sum() {
		t.Fatalf("time-shifted sequencers hash differently")
	}
	// Doubling the backoff must be visible.
	a.Failed(0, 0, 2)
	fa.Reset()
	a.Hash(fa, 2)
	if fa.Sum() == fb.Sum() {
		t.Fatalf("backoff growth did not change the fingerprint")
	}
}

// TestFailSafeSnapshotHash covers tracker snapshot/restore and the clamped
// silence-age hash, including the disabled horizon.
func TestFailSafeSnapshotHash(t *testing.T) {
	tr := NewFailSafeTracker[int64](4, 0)
	snap := tr.Snapshot()
	if !tr.Engage(10) {
		t.Fatalf("tracker did not engage past the horizon")
	}
	tr.Restore(snap)
	if tr.Engaged() {
		t.Fatalf("restore kept the engaged latch")
	}

	f1, f2 := NewFingerprint(), NewFingerprint()
	HashFailSafe(f1, tr.Snapshot(), 100)
	HashFailSafe(f2, tr.Snapshot(), 2000)
	if f1.Sum() != f2.Sum() {
		t.Fatalf("silence ages past the horizon hash differently")
	}
	tr.Contact(100)
	f1.Reset()
	HashFailSafe(f1, tr.Snapshot(), 101)
	if f1.Sum() == f2.Sum() {
		t.Fatalf("recent contact did not change the fingerprint")
	}

	// Disabled horizon: age never matters.
	d := NewFailSafeTracker[int64](-1, 0)
	f1.Reset()
	f2.Reset()
	HashFailSafe(f1, d.Snapshot(), 5)
	HashFailSafe(f2, d.Snapshot(), 5_000_000)
	if f1.Sum() != f2.Sum() {
		t.Fatalf("disabled fail-safe fingerprint depends on time")
	}
}

// TestMonitorSnapshotRestore covers the monitor's snapshot/restore hooks.
func TestMonitorSnapshotRestore(t *testing.T) {
	m := NewRateMonitor([][]float64{{2}, {10}}, 1)
	m.Accumulate(0, 3)
	m.SetApplied(0)
	snap := m.Snapshot()

	m.Accumulate(0, 100)
	if cfg := m.Scan(1); cfg != 1 {
		t.Fatalf("hot scan selected %d, want 1", cfg)
	}
	m.SetApplied(1)

	m.Restore(snap)
	if m.Applied() != 0 {
		t.Fatalf("restore: applied %d, want 0", m.Applied())
	}
	if cfg := m.Scan(2); cfg != 0 {
		t.Fatalf("restored scan selected %d, want 0 (1.5 t/s against {2, 10})", cfg)
	}
}

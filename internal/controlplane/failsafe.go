package controlplane

// Time abstracts the two clocks the LAAR runtimes keep: the live runtime's
// int64 unix nanoseconds and the engine's float64 simulated seconds.
// (Nanosecond timestamps exceed float64's 2^53 integer range, and engine
// seconds cannot round-trip through int64 — so the fail-safe arithmetic is
// generic instead of adapted.)
type Time interface {
	~int64 | ~float64
}

// Silent is the shared fail-safe predicate: the control plane has been
// silent at time now when the last contact is at least horizon ago. A
// negative horizon disables the rule.
func Silent[T Time](lastContact, now, horizon T) bool {
	return horizon >= 0 && now-lastContact >= horizon
}

// FailSafeTracker is the replica-side fail-safe machine: when the control
// plane has issued no contact for the horizon, the replicas revert to full
// activation — maximum fault tolerance at degraded capacity is the safe
// default with nobody left to issue commands. The tracker latches the
// engaged state so the reversion fires once per silence.
type FailSafeTracker[T Time] struct {
	horizon     T
	lastContact T
	engaged     bool
}

// NewFailSafeTracker builds a tracker with the given silence horizon
// (negative disables it), counting silence from now.
func NewFailSafeTracker[T Time](horizon, now T) *FailSafeTracker[T] {
	return &FailSafeTracker[T]{horizon: horizon, lastContact: now}
}

// Contact records control-plane contact at time now, restarting the
// silence horizon.
func (t *FailSafeTracker[T]) Contact(now T) { t.lastContact = now }

// Engage reports whether the fail-safe fires at time now: true exactly
// once per silence, when the horizon has elapsed since the last contact
// and the tracker is not already engaged. The caller performs the
// reversion to full activation.
func (t *FailSafeTracker[T]) Engage(now T) bool {
	if t.engaged || !Silent(t.lastContact, now, t.horizon) {
		return false
	}
	t.engaged = true
	return true
}

// Engaged reports whether the fail-safe is currently engaged.
func (t *FailSafeTracker[T]) Engaged() bool { return t.engaged }

// Clear disengages the fail-safe — a leader is back — and reports whether
// it had been engaged (the caller then rolls back the reversion).
func (t *FailSafeTracker[T]) Clear() bool {
	was := t.engaged
	t.engaged = false
	return was
}

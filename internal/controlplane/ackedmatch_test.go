package controlplane

import "testing"

// TestAckedMatchRejectsStaleAck pins the asynchronous-ack hardening: an
// acknowledgement must name the in-flight command exactly — a re-ack of
// an earlier command (duplicate delivery racing a retransmission) or one
// under a stale ballot cannot complete a newer command.
func TestAckedMatchRejectsStaleAck(t *testing.T) {
	s := NewCommandSequencer(1, 1, RetryPolicy{Min: 1, Max: 2})
	s.BeginEpoch(256)

	cmd1, send, _ := s.Step(0, 0, true, 0)
	if !send {
		t.Fatal("first command not sent")
	}
	if s.AckedMatch(0, 0, cmd1.Epoch, cmd1.Seq); s.Pending() != 0 {
		t.Fatalf("matching ack left %d pending", s.Pending())
	}

	// A newer command in flight: the old command's re-ack must not
	// complete it.
	cmd2, send, _ := s.Step(0, 0, false, 0)
	if !send || cmd2.Seq <= cmd1.Seq {
		t.Fatalf("second command: send=%v seq=%d (first %d)", send, cmd2.Seq, cmd1.Seq)
	}
	if s.AckedMatch(0, 0, cmd1.Epoch, cmd1.Seq) {
		t.Fatal("stale re-ack of the first command was applied")
	}
	if s.AckedMatch(0, 0, cmd2.Epoch+1, cmd2.Seq) {
		t.Fatal("ack under a foreign ballot was applied")
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want the second command still in flight", s.Pending())
	}
	if !s.AckedMatch(0, 0, cmd2.Epoch, cmd2.Seq) {
		t.Fatal("exact ack of the in-flight command was refused")
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d after the exact ack", s.Pending())
	}

	// On an idle slot every ack is a no-op.
	if s.AckedMatch(0, 0, cmd2.Epoch, cmd2.Seq) {
		t.Fatal("ack applied to a slot with nothing in flight")
	}
}

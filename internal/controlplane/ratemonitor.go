package controlplane

import "laar/internal/rtree"

// MeasurementDiscount is the tiny relative discount applied to every
// measured rate. It absorbs float accumulation error: without it a
// measured rate can exceed the configuration's exact rate by one ulp and
// spuriously fail the domination test.
const MeasurementDiscount = 1 - 1e-9

// RateMonitor is the Rate Monitor + configuration-selection machine: it
// accumulates per-source tuple counts into monitor windows, converts them
// into discounted rate measurements, maps a measurement to the nearest
// input configuration dominating it (falling back to the most
// resource-hungry configuration when nothing dominates), and tracks the
// applied configuration for the caller's change-detection hysteresis.
//
// The machine owns one reusable measurement buffer, so a steady-state
// Accumulate → Measure → Select cycle allocates nothing beyond the R-tree
// walk.
type RateMonitor struct {
	lookup   *rtree.Tree
	maxCfg   int
	windows  []float64
	measured rtree.Point
	applied  int
}

// NewRateMonitor builds a monitor over the configuration rate points:
// rates[c][s] is configuration c's expected rate at source s. maxCfg is
// the fallback configuration when a measurement dominates every point —
// the most resource-hungry configuration, which never underestimates the
// load. The applied configuration starts at -1 (nothing applied).
func NewRateMonitor(rates [][]float64, maxCfg int) *RateMonitor {
	numSources := 0
	if len(rates) > 0 {
		numSources = len(rates[0])
	}
	m := &RateMonitor{
		lookup:   rtree.New(numSources),
		maxCfg:   maxCfg,
		windows:  make([]float64, numSources),
		measured: make(rtree.Point, numSources),
		applied:  -1,
	}
	for c, r := range rates {
		m.lookup.Insert(rtree.Point(r), c)
	}
	return m
}

// NumSources returns the width of the monitor's source vector.
func (m *RateMonitor) NumSources() int { return len(m.windows) }

// Accumulate adds n tuples from source src to the current monitor window.
func (m *RateMonitor) Accumulate(src int, n float64) { m.windows[src] += n }

// ResetWindows discards the accumulated windows — a freshly promoted
// leader starts measuring from scratch rather than from a window that
// partially predates its lease.
func (m *RateMonitor) ResetWindows() {
	for i := range m.windows {
		m.windows[i] = 0
	}
}

// Measure converts the accumulated windows into discounted rates over the
// elapsed interval, resets the windows, and returns the machine's reusable
// measurement buffer (overwritten by the next Measure).
func (m *RateMonitor) Measure(elapsed float64) []float64 {
	for i, w := range m.windows {
		m.measured[i] = w / elapsed * MeasurementDiscount
		m.windows[i] = 0
	}
	return m.measured
}

// Measured returns the latest measurement buffer without re-measuring —
// all zeros before the first Measure.
func (m *RateMonitor) Measured() []float64 { return m.measured }

// Select maps a measurement to the nearest input configuration dominating
// it, or to the fallback configuration when the measured rates exceed
// every known configuration (e.g. a glitch overshoot).
func (m *RateMonitor) Select(measured []float64) int {
	_, cfg, ok := m.lookup.NearestDominating(rtree.Point(measured))
	if !ok {
		cfg = m.maxCfg
	}
	return cfg
}

// Scan is one full monitor step: measure the windows over elapsed and
// select the dominating configuration. The caller compares the result
// against Applied for its change hysteresis.
func (m *RateMonitor) Scan(elapsed float64) int {
	return m.Select(m.Measure(elapsed))
}

// Applied returns the configuration the caller last committed, -1 before
// the first SetApplied.
func (m *RateMonitor) Applied() int { return m.applied }

// SetApplied records the configuration the caller committed — the
// hysteresis reference the next Scan's result is compared against.
func (m *RateMonitor) SetApplied(cfg int) { m.applied = cfg }

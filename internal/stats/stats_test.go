package stats

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanMinMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if got := Mean(xs); got != 2.8 {
		t.Errorf("Mean = %v, want 2.8", got)
	}
	if got := Min(xs); got != 1 {
		t.Errorf("Min = %v, want 1", got)
	}
	if got := Max(xs); got != 5 {
		t.Errorf("Max = %v, want 5", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("empty-slice aggregates should be NaN")
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("StdDev(constant) = %v, want 0", got)
	}
	// Population stddev of {1,2,3,4} = sqrt(1.25).
	if got := StdDev([]float64{1, 2, 3, 4}); math.Abs(got-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", got, math.Sqrt(1.25))
	}
	if !math.IsNaN(StdDev(nil)) {
		t.Error("StdDev(nil) should be NaN")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {25, 20}, {50, 30}, {75, 40}, {100, 50}, {-5, 10}, {110, 50},
		{10, 14}, // interpolated: rank 0.4 → 10 + 0.4·10
	}
	for _, tc := range cases {
		if got := Percentile(xs, tc.p); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile(nil) should be NaN")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 3}
	Percentile(xs, 50)
	if !reflect.DeepEqual(xs, []float64{5, 1, 3}) {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestBoxPlotNoOutliers(t *testing.T) {
	b := NewBoxPlot([]float64{1, 2, 3, 4, 5})
	if b.Median != 3 || b.Q1 != 2 || b.Q3 != 4 {
		t.Fatalf("quartiles = (%v, %v, %v)", b.Q1, b.Median, b.Q3)
	}
	if b.LoWhisk != 1 || b.HiWhisk != 5 {
		t.Fatalf("whiskers = (%v, %v), want (1, 5)", b.LoWhisk, b.HiWhisk)
	}
	if len(b.Outliers) != 0 {
		t.Fatalf("outliers = %v, want none", b.Outliers)
	}
	if b.N != 5 {
		t.Fatalf("N = %d", b.N)
	}
}

func TestBoxPlotDetectsOutlier(t *testing.T) {
	// IQR of {1..9} is 4 (Q1=3, Q3=7); 100 is far above Q3+1.5·IQR = 13.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100}
	b := NewBoxPlot(xs)
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Fatalf("Outliers = %v, want [100]", b.Outliers)
	}
	if b.HiWhisk == 100 {
		t.Fatal("whisker must exclude the outlier")
	}
}

func TestBoxPlotPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBoxPlot(nil) did not panic")
		}
	}()
	NewBoxPlot(nil)
}

func TestBoxPlotInvariantsQuick(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		b := NewBoxPlot(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		// Quartiles are ordered; whiskers are finite (at least one sample
		// always falls within the fences), ordered, and within the sample
		// range; inliers plus outliers account for every sample.
		ordered := b.Q1 <= b.Median && b.Median <= b.Q3 && b.LoWhisk <= b.HiWhisk
		inRange := !math.IsInf(b.LoWhisk, 0) && !math.IsInf(b.HiWhisk, 0) &&
			b.LoWhisk >= sorted[0] && b.HiWhisk <= sorted[len(sorted)-1]
		return ordered && inRange && b.N == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.AddAll([]float64{0, 1.9, 2, 5, 9.9, -3, 42})
	want := []int{3, 1, 1, 0, 2} // -3 clamps into bin 0, 42 into bin 4
	if !reflect.DeepEqual(h.Counts, want) {
		t.Fatalf("Counts = %v, want %v", h.Counts, want)
	}
	if h.N != 7 {
		t.Fatalf("N = %d, want 7", h.N)
	}
	if got := h.BinCenter(0); got != 1 {
		t.Fatalf("BinCenter(0) = %v, want 1", got)
	}
	if h.String() == "" {
		t.Fatal("String() should render bins")
	}
}

func TestHistogramPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram accepted inverted range")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestNormalizeAndRatios(t *testing.T) {
	got := Normalize([]float64{2, 4, 6}, 2)
	if !reflect.DeepEqual(got, []float64{1, 2, 3}) {
		t.Fatalf("Normalize = %v", got)
	}
	r := Ratios([]float64{1, 9}, []float64{2, 3})
	if !reflect.DeepEqual(r, []float64{0.5, 3}) {
		t.Fatalf("Ratios = %v", r)
	}
}

func TestNormalizePanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Normalize by zero did not panic")
		}
	}()
	Normalize([]float64{1}, 0)
}

func TestRatiosPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Ratios length mismatch did not panic")
		}
	}()
	Ratios([]float64{1}, []float64{1, 2})
}

func TestPercentileAgainstSortedIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	// With 101 samples, the p-th percentile lands exactly on index p.
	for _, p := range []float64{0, 10, 25, 50, 75, 90, 100} {
		want := sorted[int(p)]
		if got := Percentile(xs, p); math.Abs(got-want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", p, got, want)
		}
	}
}

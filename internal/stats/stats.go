// Package stats provides the small statistical toolkit used by the LAAR
// experiment harness: means, percentiles, the five-number box-plot summaries
// (with 1.5·IQR whiskers and outliers) the paper reports in Figures 9–11,
// and fixed-bin histograms for the Figure 5 ratio distributions.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Min returns the smallest element, or NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element, or NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// StdDev returns the population standard deviation, or NaN for an empty
// slice.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between closest ranks. It returns NaN for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// BoxPlot is the five-number summary used throughout the paper's figures:
// quartiles, whiskers at the most extreme samples within 1.5·IQR of the box,
// and everything beyond the whiskers reported as outliers.
type BoxPlot struct {
	Mean     float64
	Q1       float64
	Median   float64
	Q3       float64
	LoWhisk  float64
	HiWhisk  float64
	Outliers []float64
	N        int
}

// NewBoxPlot summarises xs. It panics on an empty input.
func NewBoxPlot(xs []float64) BoxPlot {
	if len(xs) == 0 {
		panic("stats: box plot of empty sample")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	b := BoxPlot{
		Mean:   Mean(sorted),
		Q1:     percentileSorted(sorted, 25),
		Median: percentileSorted(sorted, 50),
		Q3:     percentileSorted(sorted, 75),
		N:      len(sorted),
	}
	iqr := b.Q3 - b.Q1
	loFence := b.Q1 - 1.5*iqr
	hiFence := b.Q3 + 1.5*iqr
	b.LoWhisk, b.HiWhisk = math.Inf(1), math.Inf(-1)
	for _, x := range sorted {
		if x >= loFence && x <= hiFence {
			if x < b.LoWhisk {
				b.LoWhisk = x
			}
			if x > b.HiWhisk {
				b.HiWhisk = x
			}
		} else {
			b.Outliers = append(b.Outliers, x)
		}
	}
	return b
}

// String renders the summary as a compact single-line report.
func (b BoxPlot) String() string {
	return fmt.Sprintf("mean=%.3f [%.3f | %.3f %.3f %.3f | %.3f] n=%d outliers=%d",
		b.Mean, b.LoWhisk, b.Q1, b.Median, b.Q3, b.HiWhisk, b.N, len(b.Outliers))
}

// Histogram is a fixed-width binned count over [Lo, Hi). Samples outside the
// range are clamped into the first/last bin.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	N      int
}

// NewHistogram builds a histogram with the given number of bins.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram [%v,%v) with %d bins", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	bin := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if bin < 0 {
		bin = 0
	}
	if bin >= len(h.Counts) {
		bin = len(h.Counts) - 1
	}
	h.Counts[bin]++
	h.N++
}

// AddAll records every sample in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// String renders the histogram as an ASCII bar chart, one line per bin.
func (h *Histogram) String() string {
	var sb strings.Builder
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range h.Counts {
		bar := 0
		if maxCount > 0 {
			bar = c * 40 / maxCount
		}
		fmt.Fprintf(&sb, "%8.3f |%-40s %d\n", h.BinCenter(i), strings.Repeat("#", bar), c)
	}
	return sb.String()
}

// Normalize divides each element of xs by base, returning a new slice. It
// panics when base is zero.
func Normalize(xs []float64, base float64) []float64 {
	if base == 0 {
		panic("stats: normalizing by zero")
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / base
	}
	return out
}

// Ratios returns element-wise num[i]/den[i]. It panics on length mismatch
// and maps x/0 to +Inf (or NaN for 0/0) as the float64 rules dictate.
func Ratios(num, den []float64) []float64 {
	if len(num) != len(den) {
		panic(fmt.Sprintf("stats: ratio of %d samples against %d", len(num), len(den)))
	}
	out := make([]float64, len(num))
	for i := range num {
		out[i] = num[i] / den[i]
	}
	return out
}

// Benchmarks regenerating every figure of the paper's evaluation
// (Section 5) plus the ablation studies called out in DESIGN.md. Each
// BenchmarkFigN prints the same rows/series the paper reports (once, via
// b.Log) and exposes the headline numbers as custom benchmark metrics, so
// `go test -bench=. -benchmem` doubles as the reproduction harness.
//
// Corpus sizes are scaled down from the paper's 100-application/600-instance
// studies to keep the default run in seconds; cmd/laarexp exposes flags to
// run them at full scale.
package laar_test

import (
	"math"
	"sync"
	"testing"
	"time"

	"laar"
	"laar/internal/engine"
	"laar/internal/experiments"
	"laar/internal/ftsearch"
	"laar/internal/rtree"
)

// runtimeState lazily builds the shared runtime corpus and its experiment
// matrix (figures 9–12 reuse it).
var runtimeState struct {
	once   sync.Once
	corpus []*experiments.AppRun
	rr     *experiments.RuntimeResults
	err    error
}

func runtimeResults(b *testing.B) ([]*experiments.AppRun, *experiments.RuntimeResults) {
	b.Helper()
	runtimeState.once.Do(func() {
		runtimeState.corpus, runtimeState.err = experiments.BuildCorpus(experiments.CorpusParams{
			NumApps:        8,
			NumPEs:         16,
			NumHosts:       4,
			Seed:           42,
			SolverDeadline: 2 * time.Second,
		})
		if runtimeState.err != nil {
			return
		}
		runtimeState.rr, runtimeState.err = experiments.RunAll(runtimeState.corpus, engine.Config{}, 0)
	})
	if runtimeState.err != nil {
		b.Fatal(runtimeState.err)
	}
	return runtimeState.corpus, runtimeState.rr
}

// solverState lazily runs the shared solver corpus (figures 4–6).
var solverState struct {
	once sync.Once
	runs []experiments.SolverRun
	err  error
}

func solverRuns(b *testing.B) []experiments.SolverRun {
	b.Helper()
	solverState.once.Do(func() {
		solverState.runs, solverState.err = experiments.RunSolverCorpus(experiments.SolverCorpusParams{
			NumApps:  12,
			Deadline: 500 * time.Millisecond,
			Seed:     7,
		})
	})
	if solverState.err != nil {
		b.Fatal(solverState.err)
	}
	return solverState.runs
}

// BenchmarkFig3PipelineAdaptation reproduces Figure 3: the two-PE pipeline
// under a load peak, static replication versus LAAR.
func BenchmarkFig3PipelineAdaptation(b *testing.B) {
	var rep *experiments.Fig3Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.Fig3()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + rep.String())
	b.ReportMetric(rep.Static.DroppedTotal, "static_dropped")
	b.ReportMetric(rep.LAAR.DroppedTotal, "laar_dropped")
	b.ReportMetric(rep.Static.CPUSecondsTotal, "static_cpu_s")
	b.ReportMetric(rep.LAAR.CPUSecondsTotal, "laar_cpu_s")
}

// BenchmarkFig4SolutionTypes reproduces Figure 4: FT-Search outcome mix
// (BST/SOL/NUL/TMO) as the IC constraint grows from 0.5 to 0.9.
func BenchmarkFig4SolutionTypes(b *testing.B) {
	runs := solverRuns(b)
	b.ResetTimer()
	var rep *experiments.Fig4Report
	for i := 0; i < b.N; i++ {
		rep = experiments.Fig4(runs)
	}
	b.Log("\n" + rep.String())
	b.ReportMetric(float64(rep.Counts[0.5][ftsearch.Optimal]), "BST_at_0.5")
	b.ReportMetric(float64(rep.Counts[0.9][ftsearch.Infeasible]), "NUL_at_0.9")
}

// BenchmarkFig5FirstSolutionQuality reproduces Figure 5: the first-solution
// cost ratio (paper mean 1.057) and time ratio (paper mean 0.37) against
// the proven optimum.
func BenchmarkFig5FirstSolutionQuality(b *testing.B) {
	runs := solverRuns(b)
	b.ResetTimer()
	var rep *experiments.Fig5Report
	for i := 0; i < b.N; i++ {
		rep = experiments.Fig5(runs)
	}
	b.Log("\n" + rep.String())
	b.ReportMetric(rep.CostMean, "cost_ratio_mean")
	b.ReportMetric(rep.TimeMean, "time_ratio_mean")
}

// BenchmarkFig6PruningEffectiveness reproduces Figure 6: how often each of
// the four pruning strategies fires and how large the cut branches are.
func BenchmarkFig6PruningEffectiveness(b *testing.B) {
	runs := solverRuns(b)
	b.ResetTimer()
	var rep *experiments.Fig6Report
	for i := 0; i < b.N; i++ {
		rep = experiments.Fig6(runs)
	}
	b.Log("\n" + rep.String())
	b.ReportMetric(rep.Share[ftsearch.PruneIC], "COMPL_share")
	b.ReportMetric(rep.Share[ftsearch.PruneCPU], "CPU_share")
	b.ReportMetric(rep.AvgHeight[ftsearch.PruneCPU], "CPU_avg_height")
}

// BenchmarkFig9BestCaseCPUAndDrops reproduces Figure 9: total CPU time and
// tuples dropped per variant in the best-case scenario, normalised to NR.
func BenchmarkFig9BestCaseCPUAndDrops(b *testing.B) {
	_, rr := runtimeResults(b)
	b.ResetTimer()
	var rep *experiments.Fig9Report
	for i := 0; i < b.N; i++ {
		rep = experiments.Fig9(rr)
	}
	b.Log("\n" + rep.String())
	b.ReportMetric(rep.CPU[experiments.SR].Mean, "SR_cpu_vs_NR")
	b.ReportMetric(rep.CPU[experiments.GRD].Mean, "GRD_cpu_vs_NR")
	b.ReportMetric(rep.CPU[experiments.L5].Mean, "L5_cpu_vs_NR")
	b.ReportMetric(rep.CPU[experiments.L7].Mean, "L7_cpu_vs_NR")
	b.ReportMetric(rep.RawDrops[experiments.SR].Mean, "SR_drops")
	b.ReportMetric(rep.RawDrops[experiments.L5].Mean, "L5_drops")
}

// BenchmarkFig10PeakOutputRate reproduces Figure 10: application output
// rate during load peaks, normalised to NR.
func BenchmarkFig10PeakOutputRate(b *testing.B) {
	corpus, rr := runtimeResults(b)
	b.ResetTimer()
	var rep *experiments.Fig10Report
	for i := 0; i < b.N; i++ {
		rep = experiments.Fig10(corpus, rr)
	}
	b.Log("\n" + rep.String())
	b.ReportMetric(rep.Rate[experiments.SR].Mean, "SR_rate_vs_NR")
	b.ReportMetric(rep.Rate[experiments.GRD].Mean, "GRD_rate_vs_NR")
	b.ReportMetric(rep.Rate[experiments.L7].Mean, "L7_rate_vs_NR")
}

// BenchmarkFig11WorstCaseIC reproduces Figure 11: tuples processed under
// the pessimistic worst-case model (top) and under a single host crash with
// 16-second recovery (bottom), normalised to the failure-free NR volume.
func BenchmarkFig11WorstCaseIC(b *testing.B) {
	_, rr := runtimeResults(b)
	b.ResetTimer()
	var rep *experiments.Fig11Report
	for i := 0; i < b.N; i++ {
		rep = experiments.Fig11(rr)
	}
	b.Log("\n" + rep.String())
	b.ReportMetric(rep.WorstIC[experiments.NR].Mean, "NR_worst_IC")
	b.ReportMetric(rep.WorstIC[experiments.L5].Mean, "L5_worst_IC")
	b.ReportMetric(rep.WorstIC[experiments.L7].Mean, "L7_worst_IC")
	b.ReportMetric(rep.CrashIC[experiments.L5].Mean, "L5_crash_IC")
	b.ReportMetric(rep.MaxViolation, "max_violation")
}

// BenchmarkFig12Summary reproduces Figure 12: mean drops, IC and cost per
// variant normalised to static replication.
func BenchmarkFig12Summary(b *testing.B) {
	_, rr := runtimeResults(b)
	b.ResetTimer()
	var rep *experiments.Fig12Report
	for i := 0; i < b.N; i++ {
		rep = experiments.Fig12(rr)
	}
	b.Log("\n" + rep.String())
	b.ReportMetric(rep.Cost[experiments.L5], "L5_cost_vs_SR")
	b.ReportMetric(rep.Cost[experiments.L7], "L7_cost_vs_SR")
	b.ReportMetric(rep.IC[experiments.L7], "L7_IC_vs_SR")
}

// BenchmarkExtFailureModels evaluates the alternative-failure-model
// extension (paper Section 6.i): IC estimates under pessimistic,
// single-survivor and independent models against the measured worst-case
// and host-crash values.
func BenchmarkExtFailureModels(b *testing.B) {
	corpus, rr := runtimeResults(b)
	b.ResetTimer()
	var rep *experiments.FailureModelsReport
	for i := 0; i < b.N; i++ {
		rep = experiments.FailureModels(corpus, rr)
	}
	b.Log("\n" + rep.String())
	b.ReportMetric(rep.Estimates["pessimistic"].Mean, "pessimistic_mean")
	b.ReportMetric(rep.Estimates["single-survivor"].Mean, "survivor_mean")
	b.ReportMetric(rep.MeasuredWorst.Mean, "measured_worst_mean")
	b.ReportMetric(rep.MeasuredCrash.Mean, "measured_crash_mean")
	b.ReportMetric(float64(rep.PessimisticSound), "bound_violations")
}

// BenchmarkExtCheckpointVsReplication quantifies the related-work
// trade-off of Section 2 on a generated application: active replication's
// constant CPU overhead and zero-outage masking versus checkpoint/restore's
// low best-case cost and 16-second recovery loss per crash.
func BenchmarkExtCheckpointVsReplication(b *testing.B) {
	gen, err := laar.GenerateApp(laar.GenParams{NumPEs: 12, NumHosts: 4, Seed: 77})
	if err != nil {
		b.Fatal(err)
	}
	grd, err := laar.GreedyStrategy(gen.Rates, gen.Assignment)
	if err != nil {
		b.Fatal(err)
	}
	nr := laar.NonReplicatedStrategy(grd, gen.HighCfg)
	tr, err := laar.AlternatingTrace(300, 90, 1.0/3.0, gen.LowCfg, gen.HighCfg)
	if err != nil {
		b.Fatal(err)
	}
	crash := []laar.FailureEvent{{Time: 120, Kind: laar.ReplicaDown, PE: 0, Replica: 0}}
	run := func(s *laar.Strategy, cfg laar.SimConfig) *laar.Metrics {
		sim, err := laar.NewSimulation(gen.Desc, gen.Assignment, s, tr, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := sim.InjectAll(crash); err != nil {
			b.Fatal(err)
		}
		m, err := sim.Run()
		if err != nil {
			b.Fatal(err)
		}
		return m
	}
	var repl, ckpt *laar.Metrics
	for i := 0; i < b.N; i++ {
		// GRD is the replication comparator: dynamic deactivation keeps it
		// from saturating during peaks, so the only difference left is how
		// the two techniques absorb the crash.
		repl = run(grd, laar.SimConfig{})
		ckpt = run(nr, laar.SimConfig{
			CheckpointInterval: 5, CheckpointCycles: 1e7,
			RecoverAfter: 16, RestoreCycles: 5e7,
		})
	}
	b.ReportMetric(repl.CPUSecondsTotal, "replication_cpu_s")
	b.ReportMetric(ckpt.CPUSecondsTotal, "checkpoint_cpu_s")
	b.ReportMetric(repl.SinkTotal, "replication_sink")
	b.ReportMetric(ckpt.SinkTotal, "checkpoint_sink")
	b.ReportMetric(ckpt.OverheadCyclesTotal/1e9, "checkpoint_overhead_gcycles")
}

// ablationInstance builds a fixed mid-size solver instance for the pruning
// and ordering ablations.
func ablationInstance(b *testing.B) (*laar.Rates, *laar.Assignment) {
	b.Helper()
	gen, err := laar.GenerateApp(laar.GenParams{NumPEs: 8, NumHosts: 3, Seed: 1234})
	if err != nil {
		b.Fatal(err)
	}
	return gen.Rates, gen.Assignment
}

// benchSolve runs the solver with the given options, reporting nodes
// explored per operation.
func benchSolve(b *testing.B, opts laar.SolveOptions) {
	b.Helper()
	r, asg := ablationInstance(b)
	var nodes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := laar.Solve(r, asg, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Outcome != laar.Optimal {
			b.Fatalf("ablation instance not solved to optimality: %v", res.Outcome)
		}
		nodes = res.Stats.Nodes
	}
	b.ReportMetric(float64(nodes), "nodes/op")
}

// BenchmarkAblationPruningAll is the baseline with all four prunings on.
func BenchmarkAblationPruningAll(b *testing.B) {
	benchSolve(b, laar.SolveOptions{ICMin: 0.6})
}

// BenchmarkAblationPruningNoCPU disables CPU-constraint pruning.
func BenchmarkAblationPruningNoCPU(b *testing.B) {
	opts := laar.SolveOptions{ICMin: 0.6}
	opts.Disable[laar.PruneCPU] = true
	benchSolve(b, opts)
}

// BenchmarkAblationPruningNoIC disables IC upper-bound (COMPL) pruning.
func BenchmarkAblationPruningNoIC(b *testing.B) {
	opts := laar.SolveOptions{ICMin: 0.6}
	opts.Disable[laar.PruneIC] = true
	benchSolve(b, opts)
}

// BenchmarkAblationPruningNoCost disables cost lower-bound pruning.
func BenchmarkAblationPruningNoCost(b *testing.B) {
	opts := laar.SolveOptions{ICMin: 0.6}
	opts.Disable[laar.PruneCost] = true
	benchSolve(b, opts)
}

// BenchmarkAblationPruningNoDOM disables forward domain propagation.
func BenchmarkAblationPruningNoDOM(b *testing.B) {
	opts := laar.SolveOptions{ICMin: 0.6}
	opts.Disable[laar.PruneDOM] = true
	benchSolve(b, opts)
}

// BenchmarkAblationConfigOrder uses descriptor order instead of the
// most-resource-hungry-first exploration heuristic.
func BenchmarkAblationConfigOrder(b *testing.B) {
	benchSolve(b, laar.SolveOptions{ICMin: 0.6, NaturalConfigOrder: true})
}

// BenchmarkSolverParallel4 runs the same instance with 4 workers.
func BenchmarkSolverParallel4(b *testing.B) {
	benchSolve(b, laar.SolveOptions{ICMin: 0.6, Workers: 4})
}

// BenchmarkAblationPlacement compares the LPT placement against the naive
// round-robin baseline by the optimal cost FT-Search can achieve on top of
// each (same application, same IC target). A poor placement concentrates
// load and inflates the feasible-activation cost — or destroys feasibility
// outright.
func BenchmarkAblationPlacement(b *testing.B) {
	gen, err := laar.GenerateApp(laar.GenParams{NumPEs: 8, NumHosts: 3, Seed: 1234})
	if err != nil {
		b.Fatal(err)
	}
	rr, err := laar.PlaceRoundRobin(gen.Desc.App.NumPEs(), laar.DefaultReplication, 3)
	if err != nil {
		b.Fatal(err)
	}
	var lptCost, rrCost float64
	for i := 0; i < b.N; i++ {
		lpt, err := laar.Solve(gen.Rates, gen.Assignment, laar.SolveOptions{ICMin: 0.5})
		if err != nil {
			b.Fatal(err)
		}
		rrRes, err := laar.Solve(gen.Rates, rr, laar.SolveOptions{ICMin: 0.5})
		if err != nil {
			b.Fatal(err)
		}
		lptCost = lpt.Cost
		if rrRes.Strategy != nil {
			rrCost = rrRes.Cost
		} else {
			rrCost = -1 // infeasible under round-robin
		}
	}
	b.ReportMetric(lptCost, "lpt_cost")
	b.ReportMetric(rrCost, "roundrobin_cost")
}

// BenchmarkAblationConfigLookupRTree measures the HAController's R-tree
// dominating-nearest lookup against BenchmarkAblationConfigLookupLinear's
// scan, on a 4-source, 256-configuration rate space.
func BenchmarkAblationConfigLookupRTree(b *testing.B) {
	tr, queries := lookupFixture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		tr.NearestDominating(q)
	}
}

// BenchmarkAblationConfigLookupLinear is the brute-force comparator.
func BenchmarkAblationConfigLookupLinear(b *testing.B) {
	_, queries := lookupFixture()
	pts := lookupPoints()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		best, bestD := -1, 1e300
		for j, p := range pts {
			dom := true
			var d float64
			for x := range q {
				if p[x] < q[x] {
					dom = false
					break
				}
				d += (p[x] - q[x]) * (p[x] - q[x])
			}
			if dom && d < bestD {
				best, bestD = j, d
			}
		}
		_ = best
	}
}

func lookupPoints() []rtree.Point {
	// 4 sources × 4 rates each = 256 joint configurations.
	rates := []float64{4, 8, 12, 16}
	var pts []rtree.Point
	for _, a := range rates {
		for _, b := range rates {
			for _, c := range rates {
				for _, d := range rates {
					pts = append(pts, rtree.Point{a, b, c, d})
				}
			}
		}
	}
	return pts
}

func lookupFixture() (*rtree.Tree, []rtree.Point) {
	pts := lookupPoints()
	tr := rtree.New(4)
	for i, p := range pts {
		tr.Insert(p, i)
	}
	queries := make([]rtree.Point, 64)
	for i := range queries {
		queries[i] = rtree.Point{
			float64(1 + i%16), float64(1 + (i*7)%16),
			float64(1 + (i*3)%16), float64(1 + (i*5)%16),
		}
	}
	return tr, queries
}

// BenchmarkExtLatencySLA traces the latency/cost frontier of the
// maximum-latency SLA extension on a fixed generated application.
func BenchmarkExtLatencySLA(b *testing.B) {
	gen, err := laar.GenerateApp(laar.GenParams{NumPEs: 8, NumHosts: 3, Seed: 55})
	if err != nil {
		b.Fatal(err)
	}
	bounds := []float64{math.Inf(1), 3, 1, 0.3}
	var rep *experiments.LatencyReport
	for i := 0; i < b.N; i++ {
		rep, err = experiments.LatencySweep(gen, 0.5, bounds, 5*time.Second)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + rep.String())
	b.ReportMetric(rep.Points[0].Latency, "unconstrained_latency_s")
	feasible := 0
	for _, p := range rep.Points {
		if p.Outcome == laar.Optimal || p.Outcome == laar.Feasible {
			feasible++
		}
	}
	b.ReportMetric(float64(feasible), "feasible_bounds")
}

// BenchmarkAblationValueOrder compares the replication-first exploration
// (the default behind the Figure 5 first-solution quality) against
// singles-first exploration on a fixed instance: same optimum, different
// first-solution dynamics.
func BenchmarkAblationValueOrder(b *testing.B) {
	r, asg := ablationInstance(b)
	var def, alt *laar.SolveResult
	for i := 0; i < b.N; i++ {
		var err error
		def, err = laar.Solve(r, asg, laar.SolveOptions{ICMin: 0.6})
		if err != nil {
			b.Fatal(err)
		}
		alt, err = laar.Solve(r, asg, laar.SolveOptions{ICMin: 0.6, SinglesFirst: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(def.FirstCost/def.Cost, "replfirst_first_cost_ratio")
	b.ReportMetric(alt.FirstCost/alt.Cost, "singlesfirst_first_cost_ratio")
	b.ReportMetric(float64(def.Stats.Nodes), "replfirst_nodes")
	b.ReportMetric(float64(alt.Stats.Nodes), "singlesfirst_nodes")
}

// BenchmarkIncrementalResolve measures the incremental anytime FT-Search
// path: a warm re-solve on the retained solver (incumbent, caches and
// arenas survive the rate shift) against a cold solve of the identical
// shifted instance. The warm sub-benchmark's allocs/op is gated by
// laarbench (-max-warm-resolve-allocs): the retained solver searches out
// of reused arenas, so a warm re-solve must not allocate per explored
// node.
func BenchmarkIncrementalResolve(b *testing.B) {
	gen, err := laar.GenerateApp(laar.GenParams{NumPEs: 10, NumHosts: 4, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	opts := laar.SolveOptions{ICMin: 0.4}
	// Alternating 5%-up / back-to-nominal shifts: every iteration applies a
	// real rate change, and both instances stay feasible so the incumbent
	// survives to seed the next warm re-solve.
	shiftFor := func(i int) laar.Shift {
		if i%2 == 0 {
			return laar.Shift{Cfg: 1, Scale: 1.05}
		}
		return laar.Shift{Cfg: 1, Scale: 1}
	}

	b.Run("cold", func(b *testing.B) {
		var nodes int64
		for i := 0; i < b.N; i++ {
			sv, err := laar.NewSolver(gen.Rates, gen.Assignment, laar.SolverConfig{Opts: opts})
			if err != nil {
				b.Fatal(err)
			}
			res, err := sv.Resolve(shiftFor(i))
			if err != nil {
				b.Fatal(err)
			}
			nodes += res.Stats.Nodes
		}
		b.ReportMetric(float64(nodes)/float64(b.N), "nodes/op")
	})
	b.Run("warm", func(b *testing.B) {
		sv, err := laar.NewSolver(gen.Rates, gen.Assignment, laar.SolverConfig{Opts: opts})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sv.Solve(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		var nodes int64
		for i := 0; i < b.N; i++ {
			res, err := sv.Resolve(shiftFor(i))
			if err != nil {
				b.Fatal(err)
			}
			nodes += res.Stats.Nodes
		}
		b.ReportMetric(float64(nodes)/float64(b.N), "nodes/op")
	})
}

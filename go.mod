module laar

go 1.22

// Trafficmonitor runs the paper's motivating smart-city scenario on the
// live goroutine runtime: vehicles periodically report their positions, a
// small data-flow parses the reports, aggregates congestion per
// intersection, and feeds a traffic-light control sink. During rush hour
// the report rate doubles; LAAR's HAController deactivates redundant
// replicas to absorb the spike, and a mid-run replica crash demonstrates
// the heartbeat-driven failover. Because reports are spatially and
// temporally redundant, the controlled information loss LAAR trades away
// is acceptable for this workload (Section 1).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync/atomic"
	"time"

	"laar"
)

// report is one vehicle position report.
type report struct {
	vehicle      int
	intersection int
	speedKmH     float64
}

// congestion is a per-intersection aggregate emitted downstream.
type congestion struct {
	intersection int
	meanSpeed    float64
	vehicles     int
}

func main() {
	// Data flow: reports -> parse/filter -> congestion aggregate -> lights.
	b := laar.NewBuilder("traffic-monitor")
	src := b.AddSource("vehicle-reports")
	parse := b.AddPE("parse-filter")
	agg := b.AddPE("congestion")
	sink := b.AddSink("light-controller")
	b.Connect(src, parse, 1, 2e6)
	b.Connect(parse, agg, 0.1, 2e6) // the aggregator emits one summary per ~10 reports
	b.Connect(agg, sink, 0, 0)
	app, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	desc := &laar.Descriptor{
		App: app,
		Configs: []laar.InputConfig{
			{Name: "Normal", Rates: []float64{200}, Prob: 0.75},
			{Name: "RushHour", Rates: []float64{400}, Prob: 0.25},
		},
		HostCapacity:  1e9,
		BillingPeriod: 3600,
	}
	if err := desc.Validate(); err != nil {
		log.Fatal(err)
	}
	rates := laar.NewRates(desc)
	// Three hosts: enough headroom to keep the parse stage replicated even
	// during rush hour, which an IC ≥ 0.7 guarantee requires here.
	asg, err := laar.PlaceLPT(rates, laar.DefaultReplication, 3)
	if err != nil {
		log.Fatal(err)
	}
	res, err := laar.Solve(rates, asg, laar.SolveOptions{ICMin: 0.7})
	if err != nil {
		log.Fatal(err)
	}
	if res.Strategy == nil {
		log.Fatalf("no strategy: %v", res.Outcome)
	}
	fmt.Printf("strategy: %v, guaranteed IC %.3f, cost %.3g cycles/period\n",
		res.Outcome, res.IC, res.Cost)

	// Operators: each replica keeps its own (stateless-per-window) state.
	factory := func(pe laar.ComponentID, replica int) laar.Operator {
		switch app.Component(pe).Name {
		case "parse-filter":
			return laar.OperatorFunc(func(t laar.Tuple) []any {
				r, ok := t.Data.(report)
				if !ok || r.speedKmH < 0 || r.speedKmH > 200 {
					return nil // malformed report: filter out
				}
				return []any{r}
			})
		default: // congestion: windowed mean speed per ~10 reports
			var count int
			var speedSum float64
			return laar.OperatorFunc(func(t laar.Tuple) []any {
				r := t.Data.(report)
				count++
				speedSum += r.speedKmH
				if count < 10 {
					return nil
				}
				out := congestion{
					intersection: r.intersection,
					meanSpeed:    speedSum / float64(count),
					vehicles:     count,
				}
				count, speedSum = 0, 0
				return []any{out}
			})
		}
	}

	rt, err := laar.NewLiveRuntime(desc, asg, res.Strategy, factory, laar.LiveConfig{
		MonitorInterval: 50 * time.Millisecond,
		QueueLen:        1024,
	})
	if err != nil {
		log.Fatal(err)
	}
	var decisions atomic.Int64
	var congested atomic.Int64
	rt.OnSink(func(_ laar.ComponentID, t laar.Tuple) {
		c := t.Data.(congestion)
		decisions.Add(1)
		if c.meanSpeed < 25 {
			congested.Add(1)
		}
	})
	if err := rt.Start(); err != nil {
		log.Fatal(err)
	}

	// Drive 3 simulated phases: normal -> rush hour (with a replica crash
	// and recovery) -> normal. Each phase lasts one wall-clock second.
	rng := rand.New(rand.NewSource(1))
	push := func(ratePerSec float64, d time.Duration, rush bool) {
		interval := time.Duration(float64(time.Second) / ratePerSec)
		end := time.Now().Add(d)
		for time.Now().Before(end) {
			speed := 40 + rng.Float64()*40
			if rush {
				speed = 10 + rng.Float64()*30
			}
			rt.Push(src, report{
				vehicle:      rng.Intn(5000),
				intersection: rng.Intn(12),
				speedKmH:     speed,
			})
			time.Sleep(interval)
		}
	}

	fmt.Println("phase 1: normal traffic (200 reports/s)")
	push(200, time.Second, false)
	fmt.Printf("  applied config: %s\n", desc.Configs[rt.AppliedConfig()].Name)

	fmt.Println("phase 2: rush hour (400 reports/s) + crash of parse-filter replica 0")
	go func() {
		time.Sleep(300 * time.Millisecond)
		if err := rt.KillReplica(parse, 0); err != nil {
			log.Print(err)
		}
	}()
	push(400, time.Second, true)
	fmt.Printf("  applied config: %s, parse-filter primary: replica %d\n",
		desc.Configs[rt.AppliedConfig()].Name, rt.Primary(parse))

	fmt.Println("phase 3: recovery, traffic back to normal")
	if err := rt.RecoverReplica(parse, 0); err != nil {
		log.Print(err)
	}
	push(200, time.Second, false)
	fmt.Printf("  applied config: %s, parse-filter primary: replica %d\n",
		desc.Configs[rt.AppliedConfig()].Name, rt.Primary(parse))

	stats, err := rt.Stop()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreports emitted: %d, control decisions: %d (%d congested), dropped: %d, reconfigurations: %d\n",
		stats.Emitted[src], decisions.Load(), congested.Load(), stats.Dropped, stats.ConfigSwitches)
	for pe, byRep := range stats.Processed {
		fmt.Printf("PE %d replicas processed: %v\n", pe, byRep)
	}
}

// Spltour demonstrates the textual workflow: an application written in
// LAAR-SPL (the dialect mirroring the role SPL plays for InfoSphere
// Streams), compiled through operator fusion into fewer PEs, solved under
// both an IC and a maximum-latency SLA, and verified in simulation.
package main

import (
	"fmt"
	"log"
	"time"

	"laar"
)

const appSPL = `
# A log-analytics pipeline: parse and sessionize cheap operators, then
# score sessions and aggregate alerts.
app log-analytics
host capacity 1e9
billing period 600

source logs rates 50@0.7 120@0.3
pe parse
pe sessionize
pe score
pe alerts
sink dashboard

connect logs -> parse sel 0.9 cost 8e5     # 10% of lines are malformed
connect parse -> sessionize sel 0.2 cost 1.2e6
connect sessionize -> score sel 1 cost 6e6
connect score -> alerts sel 0.05 cost 2e6
connect alerts -> dashboard
`

func main() {
	d, err := laar.ParseSPL(appSPL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %q: %d PEs, %d configurations\n",
		d.App.Name(), d.App.NumPEs(), len(d.Configs))

	// Compile: fuse cheap linear chains into single PEs, as the Streams
	// compiler would, capping any fused PE at 2e6 cycles/tuple.
	fused, err := laar.Fuse(d, laar.FuseOptions{MaxCostCycles: 2e6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fusion: %d merges -> %d PEs\n", fused.Fusions, fused.Desc.App.NumPEs())
	for _, c := range fused.Desc.App.Components() {
		if c.Kind == laar.KindPE {
			fmt.Printf("  PE %s\n", c.Name)
		}
	}
	d = fused.Desc

	rates := laar.NewRates(d)
	asg, err := laar.PlaceLPT(rates, laar.DefaultReplication, 3)
	if err != nil {
		log.Fatal(err)
	}

	// Solve with both SLA clauses: IC ≥ 0.7 and end-to-end latency ≤ 1 s.
	res, err := laar.Solve(rates, asg, laar.SolveOptions{
		ICMin:      0.7,
		MaxLatency: 1.0,
		Deadline:   10 * time.Second,
		Workers:    4,
	})
	if err != nil {
		log.Fatal(err)
	}
	if res.Strategy == nil {
		log.Fatalf("no strategy: %v", res.Outcome)
	}
	fmt.Printf("solved: %v, IC %.3f, est. latency %.3f s, cost %.3g cycles\n",
		res.Outcome, res.IC, laar.MaxLatency(rates, res.Strategy, asg), res.Cost)

	// Verify in simulation: trace matching the declared 70/30 mix.
	tr, err := laar.AlternatingTrace(600, 100, 0.3, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	run := func(worst bool) *laar.Metrics {
		sim, err := laar.NewSimulation(d, asg, res.Strategy, tr, laar.SimConfig{})
		if err != nil {
			log.Fatal(err)
		}
		if worst {
			if err := sim.InjectAll(laar.WorstCasePlan(rates, res.Strategy)); err != nil {
				log.Fatal(err)
			}
		}
		m, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		return m
	}
	best := run(false)
	worst := run(true)
	fmt.Printf("best case:  %.0f tuples processed, %.0f dropped, max queue latency %.3f s\n",
		best.ProcessedTotal, best.DroppedTotal, best.MaxLatencyEst())
	fmt.Printf("worst case: %.0f tuples processed -> measured IC %.3f (guaranteed %.3f)\n",
		worst.ProcessedTotal, worst.ProcessedTotal/best.ProcessedTotal, res.IC)

	// Round-trip: the deployed application can be exported back to SPL.
	fmt.Println("\nfused application as LAAR-SPL:")
	fmt.Print(laar.FormatSPL(d))
}

// Quickstart walks through the whole LAAR pipeline on the paper's running
// example (Figures 1–3): describe a two-PE application, place its replicas
// on two hosts, solve for a minimum-cost activation strategy with an IC
// guarantee, and compare static replication against LAAR on a load-spiking
// input trace — both in the best case and under worst-case failures.
package main

import (
	"fmt"
	"log"

	"laar"
)

func main() {
	// 1. Describe the application: src -> PE1 -> PE2 -> sink, with unit
	// selectivities and 1e8 cycles (100 ms on a 1 GHz core) per tuple.
	b := laar.NewBuilder("quickstart")
	src := b.AddSource("vehicles")
	pe1 := b.AddPE("parse")
	pe2 := b.AddPE("aggregate")
	sink := b.AddSink("dashboard")
	b.Connect(src, pe1, 1, 1e8)
	b.Connect(pe1, pe2, 1, 1e8)
	b.Connect(pe2, sink, 0, 0)
	app, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Characterise the input: 4 t/s 80% of the time, 8 t/s otherwise,
	// on two 1 GHz hosts billed in 5-minute periods.
	desc := &laar.Descriptor{
		App: app,
		Configs: []laar.InputConfig{
			{Name: "Low", Rates: []float64{4}, Prob: 0.8},
			{Name: "High", Rates: []float64{8}, Prob: 0.2},
		},
		HostCapacity:  1e9,
		BillingPeriod: 300,
	}
	if err := desc.Validate(); err != nil {
		log.Fatal(err)
	}
	rates := laar.NewRates(desc)

	// 3. Place two replicas of each PE on two hosts.
	asg, err := laar.PlaceLPT(rates, laar.DefaultReplication, 2)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Solve: minimum-cost activation strategy with IC ≥ 0.6.
	res, err := laar.Solve(rates, asg, laar.SolveOptions{ICMin: 0.6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solver outcome: %v\n", res.Outcome)
	fmt.Printf("guaranteed IC:  %.4f (SLA target 0.6)\n", res.IC)
	static := laar.StaticStrategy(desc, laar.DefaultReplication)
	fmt.Printf("cost:           %.3g cycles/period (static replication: %.3g, −%.0f%%)\n",
		res.Cost, laar.Cost(rates, static), 100*(1-res.Cost/laar.Cost(rates, static)))

	// 5. Simulate both strategies on a trace that spikes to High for 20%
	// of every 100-second period — matching the declared probabilities,
	// which is exactly the contract the IC guarantee is made against.
	tr, err := laar.AlternatingTrace(300, 100, 0.2, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	run := func(name string, s *laar.Strategy, worst bool) *laar.Metrics {
		sim, err := laar.NewSimulation(desc, asg, s, tr, laar.SimConfig{})
		if err != nil {
			log.Fatal(err)
		}
		if worst {
			if err := sim.InjectAll(laar.WorstCasePlan(rates, s)); err != nil {
				log.Fatal(err)
			}
		}
		m, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		return m
	}

	fmt.Println("\nbest case (no failures):")
	fmt.Println("variant   cpu-s   dropped   sink-output")
	for _, v := range []struct {
		name string
		s    *laar.Strategy
	}{{"static", static}, {"LAAR", res.Strategy}} {
		m := run(v.name, v.s, false)
		fmt.Printf("%-8s %6.1f   %7.0f   %11.0f\n", v.name, m.CPUSecondsTotal, m.DroppedTotal, m.SinkTotal)
	}

	fmt.Println("\nworst case (one adversarially chosen survivor per PE):")
	ref := run("ref", res.Strategy, false).ProcessedTotal
	fmt.Println("variant   processed   measured IC")
	for _, v := range []struct {
		name string
		s    *laar.Strategy
	}{{"static", static}, {"LAAR", res.Strategy}} {
		m := run(v.name, v.s, true)
		fmt.Printf("%-8s %10.0f   %.3f\n", v.name, m.ProcessedTotal, m.ProcessedTotal/ref)
	}
	fmt.Println("\nLAAR trades bounded worst-case completeness for enough capacity")
	fmt.Println("to ride out the load spikes that saturate static replication.")
}

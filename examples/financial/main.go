// Financial prices the reliability of a market-data analytics pipeline:
// a tick feed fans out into VWAP computation, anomaly detection and a
// risk-exposure aggregate. The feed rate is bursty — binned from recorded
// samples into a handful of discrete configurations (the Section 3 binning step) —
// and the provider wants to know what each level of the fault-tolerance SLA
// costs. The example sweeps the IC constraint from 0.5 to 0.95, solves each
// instance with FT-Search, and verifies the chosen strategy in simulation.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"laar"
)

func main() {
	// Tick analytics data flow.
	b := laar.NewBuilder("tick-analytics")
	feed := b.AddSource("tick-feed")
	norm := b.AddPE("normalize")
	vwap := b.AddPE("vwap")
	anom := b.AddPE("anomaly")
	risk := b.AddPE("risk")
	alerts := b.AddSink("alerts")
	book := b.AddSink("positions")
	b.Connect(feed, norm, 1, 1.2e6)
	b.Connect(norm, vwap, 0.2, 2.5e6)
	b.Connect(norm, anom, 1, 1.8e6)
	b.Connect(vwap, risk, 1, 3e6)
	b.Connect(anom, risk, 0.05, 5e5) // risk skims the anomaly stream cheaply
	b.Connect(anom, alerts, 0, 0)
	b.Connect(risk, book, 0, 0)
	app, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Characterise the feed from "recorded" rate samples: a quiet regime
	// around 80 t/s, a busy one around 160, and open/close bursts at 300.
	rng := rand.New(rand.NewSource(7))
	samples := make([]float64, 0, 1000)
	for i := 0; i < 600; i++ {
		samples = append(samples, 70+rng.Float64()*20)
	}
	for i := 0; i < 300; i++ {
		samples = append(samples, 150+rng.Float64()*20)
	}
	for i := 0; i < 100; i++ {
		samples = append(samples, 280+rng.Float64()*40)
	}
	binned, probs, err := laar.BinRates(samples, 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("binned feed rates: %d configurations\n", len(binned))
	configs := make([]laar.InputConfig, len(binned))
	for i := range binned {
		configs[i] = laar.InputConfig{
			Name:  fmt.Sprintf("r%.0f", binned[i]),
			Rates: []float64{binned[i]},
			Prob:  probs[i],
		}
	}
	desc := &laar.Descriptor{
		App:           app,
		Configs:       configs,
		HostCapacity:  1e9,
		BillingPeriod: 3600,
	}
	if err := desc.Validate(); err != nil {
		log.Fatal(err)
	}
	rates := laar.NewRates(desc)
	asg, err := laar.PlaceLPT(rates, laar.DefaultReplication, 3)
	if err != nil {
		log.Fatal(err)
	}

	static := laar.StaticStrategy(desc, laar.DefaultReplication)
	staticCost := laar.Cost(rates, static)
	if _, _, over := laar.Overloaded(rates, static, asg); over {
		fmt.Println("note: full static replication overloads the cluster at peak rates")
	}

	fmt.Println("\nSLA sweep (FT-Search, pessimistic failure model):")
	fmt.Println("  IC target   outcome   guaranteed IC   cost vs static   replicas active")
	var chosen *laar.SolveResult
	for _, target := range []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95} {
		res, err := laar.Solve(rates, asg, laar.SolveOptions{ICMin: target, Workers: 4})
		if err != nil {
			log.Fatal(err)
		}
		if res.Strategy == nil {
			fmt.Printf("  %8.2f    %-7v   %13s   %14s\n", target, res.Outcome, "—", "—")
			continue
		}
		total := res.Strategy.NumConfigs() * res.Strategy.NumPEs() * res.Strategy.K
		fmt.Printf("  %8.2f    %-7v   %13.4f   %13.1f%%   %d/%d\n",
			target, res.Outcome, res.IC, 100*res.Cost/staticCost, res.Strategy.TotalActive(), total)
		if target == 0.8 {
			chosen = res
		}
	}
	if chosen == nil {
		log.Fatal("IC 0.8 solve failed")
	}

	// Verify the 0.8 strategy against its guarantee in a worst-case run
	// over a random trace drawn from the declared distribution.
	probsOnly := make([]float64, len(configs))
	for i, c := range configs {
		probsOnly[i] = c.Prob
	}
	tr, err := randomTrace(3600, 60, probsOnly)
	if err != nil {
		log.Fatal(err)
	}
	run := func(s *laar.Strategy, worst bool) *laar.Metrics {
		sim, err := laar.NewSimulation(desc, asg, s, tr, laar.SimConfig{})
		if err != nil {
			log.Fatal(err)
		}
		if worst {
			if err := sim.InjectAll(laar.WorstCasePlan(rates, s)); err != nil {
				log.Fatal(err)
			}
		}
		m, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		return m
	}
	ref := run(chosen.Strategy, false)
	worst := run(chosen.Strategy, true)
	fmt.Printf("\nverification of the IC ≥ 0.8 strategy on a 1-hour random trace:\n")
	fmt.Printf("  failure-free processing: %.0f tuples, dropped %.0f\n", ref.ProcessedTotal, ref.DroppedTotal)
	fmt.Printf("  worst-case processing:   %.0f tuples → measured IC %.3f (guaranteed %.3f)\n",
		worst.ProcessedTotal, worst.ProcessedTotal/ref.ProcessedTotal, chosen.IC)

	// The guarantee is a contract against the DECLARED rate distribution
	// (Section 3); a finite trace realises slightly different shares. Under
	// the realised shares the pessimistic bound shifts accordingly, and the
	// measured value tracks it closely (short reconfiguration windows
	// around each rate change account for the residual gap).
	realized := *desc
	realized.Configs = append([]laar.InputConfig(nil), desc.Configs...)
	for i := range realized.Configs {
		realized.Configs[i].Prob = tr.Share(i)
	}
	bound := laar.IC(laar.NewRates(&realized), chosen.Strategy, laar.Pessimistic{})
	fmt.Printf("  pessimistic bound under the trace's realised shares: %.3f\n", bound)
}

// randomTrace builds a configuration schedule matching the declared
// probability masses.
func randomTrace(duration, meanSeg float64, probs []float64) (*laar.Trace, error) {
	rng := rand.New(rand.NewSource(99))
	var segs []laar.TraceSegment
	t := 0.0
	for t < duration {
		length := meanSeg * (0.5 + rng.Float64())
		end := t + length
		if end > duration {
			end = duration
		}
		x := rng.Float64()
		cfg := len(probs) - 1
		acc := 0.0
		for i, p := range probs {
			acc += p
			if x < acc {
				cfg = i
				break
			}
		}
		segs = append(segs, laar.TraceSegment{Start: t, End: end, Config: cfg})
		t = end
	}
	return laar.NewTrace(segs)
}

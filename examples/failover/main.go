// Failover studies how the replication variants survive infrastructure
// failures on a generated application: a host crashes mid-peak and recovers
// after 16 seconds (the Streams detection-and-migration time the paper
// measures), and — separately — the pessimistic worst case permanently
// removes one replica of every PE. The example contrasts the measured
// internal completeness of NR, GRD, SR and a LAAR IC ≥ 0.6 strategy against
// their a-priori guarantees.
package main

import (
	"fmt"
	"log"
	"time"

	"laar"
)

func main() {
	// A 12-PE synthetic application on 4 hosts, with the paper's corpus
	// characteristics.
	gen, err := laar.GenerateApp(laar.GenParams{NumPEs: 12, NumHosts: 4, Seed: 2026})
	if err != nil {
		log.Fatal(err)
	}
	desc, rates, asg := gen.Desc, gen.Rates, gen.Assignment
	fmt.Printf("application: %d PEs on %d hosts, Low=%.1f t/s, High=%.1f t/s\n",
		desc.App.NumPEs(), asg.NumHosts,
		desc.Configs[gen.LowCfg].Rates[0], desc.Configs[gen.HighCfg].Rates[0])

	// Build the variants.
	laarRes, err := laar.Solve(rates, asg, laar.SolveOptions{
		ICMin:    0.6,
		Deadline: 5 * time.Second,
		Workers:  4,
	})
	if err != nil {
		log.Fatal(err)
	}
	if laarRes.Strategy == nil {
		log.Fatalf("LAAR 0.6 unsolvable: %v", laarRes.Outcome)
	}
	grd, err := laar.GreedyStrategy(rates, asg)
	if err != nil {
		log.Fatal(err)
	}
	variants := []struct {
		name string
		s    *laar.Strategy
	}{
		{"NR", laar.NonReplicatedStrategy(laarRes.Strategy, gen.HighCfg)},
		{"SR", laar.StaticStrategy(desc, laar.DefaultReplication)},
		{"GRD", grd},
		{"L.6", laarRes.Strategy},
	}

	// A 5-minute trace with High active one third of the time.
	tr, err := laar.AlternatingTrace(300, 90, 1.0/3.0, gen.LowCfg, gen.HighCfg)
	if err != nil {
		log.Fatal(err)
	}
	run := func(s *laar.Strategy, plan []laar.FailureEvent) *laar.Metrics {
		sim, err := laar.NewSimulation(desc, asg, s, tr, laar.SimConfig{})
		if err != nil {
			log.Fatal(err)
		}
		if err := sim.InjectAll(plan); err != nil {
			log.Fatal(err)
		}
		m, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		return m
	}

	// Reference: failure-free NR processing volume (the BIC analogue).
	ref := run(variants[0].s, nil).ProcessedTotal

	fmt.Println("\nscenario 1 — host 0 crashes at t=62s (mid-peak), recovers after 16 s:")
	fmt.Println("variant   guaranteed IC   measured IC   dropped")
	crashPlan, err := laar.HostCrashPlan(asg.NumHosts, 0, 62, 16)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range variants {
		m := run(v.s, crashPlan)
		fmt.Printf("%-7s   %13.3f   %11.3f   %7.0f\n",
			v.name, laar.IC(rates, v.s, laar.Pessimistic{}), m.ProcessedTotal/ref, m.DroppedTotal)
	}

	fmt.Println("\nscenario 2 — pessimistic worst case (adversarial permanent survivor per PE):")
	fmt.Println("variant   guaranteed IC   measured IC")
	for _, v := range variants {
		m := run(v.s, laar.WorstCasePlan(rates, v.s))
		fmt.Printf("%-7s   %13.3f   %11.3f\n",
			v.name, laar.IC(rates, v.s, laar.Pessimistic{}), m.ProcessedTotal/ref)
	}
	fmt.Println("\nThe guarantee is the pessimistic floor: recoverable failures land far")
	fmt.Println("above it, and even the adversarial worst case never falls below it.")
}

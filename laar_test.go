package laar_test

import (
	"fmt"
	"log"
	"math"
	"os"
	"testing"
	"time"

	"laar"
)

// buildExample constructs the paper's Fig. 1 pipeline via the public API.
func buildExample(t *testing.T) (*laar.Descriptor, *laar.Rates, *laar.Assignment) {
	t.Helper()
	b := laar.NewBuilder("facade")
	src := b.AddSource("src")
	pe1 := b.AddPE("PE1")
	pe2 := b.AddPE("PE2")
	sink := b.AddSink("sink")
	b.Connect(src, pe1, 1, 1e8)
	b.Connect(pe1, pe2, 1, 1e8)
	b.Connect(pe2, sink, 0, 0)
	app, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := &laar.Descriptor{
		App: app,
		Configs: []laar.InputConfig{
			{Name: "Low", Rates: []float64{4}, Prob: 0.8},
			{Name: "High", Rates: []float64{8}, Prob: 0.2},
		},
		HostCapacity:  1e9,
		BillingPeriod: 300,
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	r := laar.NewRates(d)
	asg, err := laar.PlaceLPT(r, laar.DefaultReplication, 2)
	if err != nil {
		t.Fatal(err)
	}
	return d, r, asg
}

func TestFacadeEndToEnd(t *testing.T) {
	d, r, asg := buildExample(t)
	res, err := laar.Solve(r, asg, laar.SolveOptions{ICMin: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != laar.Optimal {
		t.Fatalf("Outcome = %v", res.Outcome)
	}
	if math.Abs(res.IC-2.0/3.0) > 1e-9 {
		t.Fatalf("IC = %v, want 2/3", res.IC)
	}
	// The facade's metric helpers agree with the solver.
	if got := laar.IC(r, res.Strategy, laar.Pessimistic{}); math.Abs(got-res.IC) > 1e-9 {
		t.Fatalf("laar.IC = %v, solver = %v", got, res.IC)
	}
	if got := laar.Cost(r, res.Strategy); math.Abs(got-res.Cost) > 1e-3 {
		t.Fatalf("laar.Cost = %v, solver = %v", got, res.Cost)
	}
	if _, _, over := laar.Overloaded(r, res.Strategy, asg); over {
		t.Fatal("solver strategy overloads a host")
	}
	// Simulate under the worst-case plan.
	tr, err := laar.AlternatingTrace(150, 50, 0.2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := laar.NewSimulation(d, asg, res.Strategy, tr, laar.SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.InjectAll(laar.WorstCasePlan(r, res.Strategy)); err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.ProcessedTotal <= 0 {
		t.Fatal("worst-case run processed nothing despite replication at Low")
	}
}

func TestFacadeBaselines(t *testing.T) {
	d, r, asg := buildExample(t)
	sr := laar.StaticStrategy(d, laar.DefaultReplication)
	grd, err := laar.GreedyStrategy(r, asg)
	if err != nil {
		t.Fatal(err)
	}
	nr := laar.NonReplicatedStrategy(grd, 1)
	if laar.IC(r, sr, laar.Pessimistic{}) != 1 {
		t.Error("IC(SR) != 1")
	}
	if laar.IC(r, nr, laar.Pessimistic{}) != 0 {
		t.Error("IC(NR) != 0")
	}
	cSR, cGRD, cNR := laar.Cost(r, sr), laar.Cost(r, grd), laar.Cost(r, nr)
	if !(cNR < cGRD && cGRD < cSR) {
		t.Errorf("cost ordering violated: %v %v %v", cNR, cGRD, cSR)
	}
}

func TestFacadeGenerateAndBin(t *testing.T) {
	gen, err := laar.GenerateApp(laar.GenParams{NumPEs: 6, NumHosts: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if gen.Desc.App.NumPEs() != 6 {
		t.Fatalf("NumPEs = %d", gen.Desc.App.NumPEs())
	}
	rates, probs, err := laar.BinRates([]float64{1, 2, 3, 10, 11}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rates) != len(probs) || len(rates) == 0 {
		t.Fatalf("BinRates shape: %v %v", rates, probs)
	}
	cfgs, err := laar.CrossConfigs([][]float64{{1, 2}}, [][]float64{{0.5, 0.5}})
	if err != nil || len(cfgs) != 2 {
		t.Fatalf("CrossConfigs: %v %v", cfgs, err)
	}
}

func TestFacadeDescriptorRoundTrip(t *testing.T) {
	d, _, _ := buildExample(t)
	data, err := laar.MarshalDescriptor(d)
	if err != nil {
		t.Fatal(err)
	}
	back, err := laar.UnmarshalDescriptor(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.App.Name() != d.App.Name() {
		t.Fatalf("name mismatch: %q", back.App.Name())
	}
}

func TestFacadePenaltyAndRefinement(t *testing.T) {
	d, r, asg := buildExample(t)
	_ = d
	soft, err := laar.Solve(r, asg, laar.SolveOptions{ICMin: 0.9, PenaltyLambda: 1e12})
	if err != nil {
		t.Fatal(err)
	}
	if soft.Outcome != laar.Optimal {
		t.Fatalf("penalty solve outcome = %v", soft.Outcome)
	}
	refined, err := laar.RefinePlacement(r, soft.Strategy, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := refined.Validate(true); err != nil {
		t.Fatalf("refined placement: %v", err)
	}
}

// TestJointPlacementActivation exercises the placement ↔ activation
// iteration of the paper's future work: solve, re-place for the solved
// strategy, and re-solve. The iterated cost must never exceed the original
// (the refined placement admits at least the original strategy's cost
// structure or better).
func TestJointPlacementActivation(t *testing.T) {
	gen, err := laar.GenerateApp(laar.GenParams{NumPEs: 10, NumHosts: 3, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	r := gen.Rates
	asg := gen.Assignment
	base, err := laar.Solve(r, asg, laar.SolveOptions{ICMin: 0.5, Deadline: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if base.Strategy == nil {
		t.Skipf("base instance unsolvable: %v", base.Outcome)
	}
	best := base.Cost
	for iter := 0; iter < 3; iter++ {
		refined, err := laar.RefinePlacement(r, base.Strategy, asg.NumHosts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := laar.Solve(r, refined, laar.SolveOptions{ICMin: 0.5, Deadline: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if res.Strategy == nil {
			t.Fatalf("iteration %d became unsolvable: %v", iter, res.Outcome)
		}
		if res.Cost > best*1.0001 {
			t.Fatalf("iteration %d cost %v regressed above %v", iter, res.Cost, best)
		}
		if res.Cost < best {
			best = res.Cost
		}
		base = res
		asg = refined
	}
	t.Logf("joint iteration: cost %.4g → %.4g", base.Cost, best)
}

// TestLatencyFacade sanity-checks the latency estimators through the
// public API.
func TestLatencyFacade(t *testing.T) {
	_, r, asg := buildExample(t)
	static := laar.StaticStrategy(r.Descriptor(), laar.DefaultReplication)
	if l := laar.MaxLatency(r, static, asg); !math.IsInf(l, 1) {
		t.Fatalf("MaxLatency(SR) = %v, want +Inf (overloaded at High)", l)
	}
	res, err := laar.Solve(r, asg, laar.SolveOptions{ICMin: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if l := laar.MaxLatency(r, res.Strategy, asg); math.IsInf(l, 1) || l <= 0 {
		t.Fatalf("MaxLatency(LAAR) = %v, want finite positive", l)
	}
	if got := laar.PathLatency(r, res.Strategy, asg, 0); got <= 0 {
		t.Fatalf("PathLatency = %v", got)
	}
	lat := laar.StageLatency(r, res.Strategy, asg, 0)
	if len(lat) != 2 {
		t.Fatalf("StageLatency covers %d PEs", len(lat))
	}
	// Alternative metrics through the facade.
	if oc := laar.OutputCompleteness(r, res.Strategy, laar.Pessimistic{}); oc <= 0 || oc > 1 {
		t.Fatalf("OutputCompleteness = %v", oc)
	}
	if arf := laar.AvgReplicationFactor(r.Descriptor(), res.Strategy); arf < 1 || arf > 2 {
		t.Fatalf("AvgReplicationFactor = %v", arf)
	}
}

// ExampleSolve demonstrates the core optimisation call on the paper's
// two-PE pipeline.
func ExampleSolve() {
	b := laar.NewBuilder("pipeline")
	src := b.AddSource("src")
	pe1 := b.AddPE("PE1")
	pe2 := b.AddPE("PE2")
	sink := b.AddSink("sink")
	b.Connect(src, pe1, 1, 1e8)
	b.Connect(pe1, pe2, 1, 1e8)
	b.Connect(pe2, sink, 0, 0)
	app, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	d := &laar.Descriptor{
		App: app,
		Configs: []laar.InputConfig{
			{Name: "Low", Rates: []float64{4}, Prob: 0.8},
			{Name: "High", Rates: []float64{8}, Prob: 0.2},
		},
		HostCapacity:  1e9,
		BillingPeriod: 300,
	}
	r := laar.NewRates(d)
	asg, err := laar.PlaceLPT(r, laar.DefaultReplication, 2)
	if err != nil {
		log.Fatal(err)
	}
	res, err := laar.Solve(r, asg, laar.SolveOptions{ICMin: 0.6, Deadline: time.Minute})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v IC=%.3f\n", res.Outcome, res.IC)
	// Output: BST IC=0.667
}

// ExampleIC shows how the internal-completeness metric reacts to replica
// deactivation under the pessimistic failure model.
func ExampleIC() {
	b := laar.NewBuilder("ic")
	src := b.AddSource("src")
	pe := b.AddPE("PE")
	sink := b.AddSink("sink")
	b.Connect(src, pe, 1, 1e6)
	b.Connect(pe, sink, 0, 0)
	app, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	d := &laar.Descriptor{
		App: app,
		Configs: []laar.InputConfig{
			{Name: "Low", Rates: []float64{10}, Prob: 0.75},
			{Name: "High", Rates: []float64{20}, Prob: 0.25},
		},
		HostCapacity:  1e9,
		BillingPeriod: 60,
	}
	r := laar.NewRates(d)
	s := laar.StaticStrategy(d, 2)
	fmt.Printf("all active: %.3f\n", laar.IC(r, s, laar.Pessimistic{}))
	s.Set(1, 0, 1, false) // drop one replica in the High configuration
	fmt.Printf("High unprotected: %.3f\n", laar.IC(r, s, laar.Pessimistic{}))
	// Output:
	// all active: 1.000
	// High unprotected: 0.600
}

// TestICGreedyFacade checks the arbitrary-k heuristic through the public
// API against the exact solver on the pipeline.
func TestICGreedyFacade(t *testing.T) {
	_, r, asg := buildExample(t)
	heur, err := laar.ICGreedyStrategy(r, asg, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if ic := laar.IC(r, heur, laar.Pessimistic{}); ic < 0.6 {
		t.Fatalf("heuristic IC = %v, want ≥ 0.6", ic)
	}
	opt, err := laar.Solve(r, asg, laar.SolveOptions{ICMin: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if hc := laar.Cost(r, heur); hc < opt.Cost*(1-1e-9) {
		t.Fatalf("heuristic cost %v below the proven optimum %v", hc, opt.Cost)
	}
}

// TestLatencyConstrainedSolveFacade exercises the max-latency SLA clause
// through the public API.
func TestLatencyConstrainedSolveFacade(t *testing.T) {
	_, r, asg := buildExample(t)
	res, err := laar.Solve(r, asg, laar.SolveOptions{ICMin: 0.6, MaxLatency: 1.1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != laar.Optimal {
		t.Fatalf("Outcome = %v", res.Outcome)
	}
	if l := laar.MaxLatency(r, res.Strategy, asg); l > 1.1 {
		t.Fatalf("MaxLatency = %v exceeds the SLA bound", l)
	}
	tight, err := laar.Solve(r, asg, laar.SolveOptions{ICMin: 0.6, MaxLatency: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Outcome != laar.Infeasible {
		t.Fatalf("Outcome = %v, want NUL under a 0.5s bound", tight.Outcome)
	}
}

// TestSPLAndFusionFacade round-trips a descriptor through LAAR-SPL and the
// fusion pass via the public API.
func TestSPLAndFusionFacade(t *testing.T) {
	d, r, _ := buildExample(t)
	text := laar.FormatSPL(d)
	back, err := laar.ParseSPL(text)
	if err != nil {
		t.Fatalf("ParseSPL: %v\n%s", err, text)
	}
	if laar.BIC(laar.NewRates(back)) != laar.BIC(r) {
		t.Fatal("SPL round trip changed BIC")
	}
	fused, err := laar.Fuse(d, laar.FuseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The two-PE pipeline collapses into one PE with identical total load.
	if fused.Desc.App.NumPEs() != 1 {
		t.Fatalf("fused PEs = %d, want 1", fused.Desc.App.NumPEs())
	}
	r2 := laar.NewRates(fused.Desc)
	var l1, l2 float64
	for p := 0; p < d.App.NumPEs(); p++ {
		l1 += r.UnitLoad(p, 0)
	}
	for p := 0; p < fused.Desc.App.NumPEs(); p++ {
		l2 += r2.UnitLoad(p, 0)
	}
	if math.Abs(l1-l2) > 1e-6 {
		t.Fatalf("fusion changed total load: %v vs %v", l1, l2)
	}
}

// TestLoadDescriptorFile sniffs both on-disk formats.
func TestLoadDescriptorFile(t *testing.T) {
	d, _, _ := buildExample(t)
	dir := t.TempDir()
	jsonPath := dir + "/app.json"
	data, err := laar.MarshalDescriptor(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	splPath := dir + "/app.spl"
	if err := os.WriteFile(splPath, []byte(laar.FormatSPL(d)), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{jsonPath, splPath} {
		back, err := laar.LoadDescriptorFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if back.App.NumPEs() != d.App.NumPEs() {
			t.Fatalf("%s: PEs = %d", path, back.App.NumPEs())
		}
	}
	if _, err := laar.LoadDescriptorFile(dir + "/missing"); err == nil {
		t.Fatal("accepted missing file")
	}
}

// TestGrandTour walks the entire workflow the paper describes (Figure 7)
// from a textual application to verified runtime guarantees: parse LAAR-SPL,
// fuse operators, place replicas, solve for a strategy, and validate the IC
// guarantee in simulation under worst-case failures.
func TestGrandTour(t *testing.T) {
	const src = `
app tour
host capacity 1e9
billing period 300
source feed rates 5@0.75 10@0.25
pe ingest
pe enrich
pe classify
pe aggregate
sink out
connect feed -> ingest sel 1 cost 2e7
connect ingest -> enrich sel 1 cost 3e7
connect enrich -> classify sel 0.8 cost 2.5e7
connect classify -> aggregate sel 0.1 cost 4e7
connect aggregate -> out
`
	d, err := laar.ParseSPL(src)
	if err != nil {
		t.Fatal(err)
	}
	// Fuse the cheap linear head under a ceiling that keeps PEs placeable.
	fused, err := laar.Fuse(d, laar.FuseOptions{MaxCostCycles: 6e7})
	if err != nil {
		t.Fatal(err)
	}
	if fused.Fusions == 0 {
		t.Fatal("the linear chain admitted no fusion")
	}
	d = fused.Desc
	rates := laar.NewRates(d)
	// Three hosts: IC 0.7 needs the fused head replicated during High,
	// which two hosts cannot accommodate.
	asg, err := laar.PlaceLPT(rates, laar.DefaultReplication, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := laar.Solve(rates, asg, laar.SolveOptions{ICMin: 0.7, Deadline: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy == nil {
		t.Fatalf("no strategy: %v", res.Outcome)
	}
	if res.IC < 0.7 {
		t.Fatalf("guaranteed IC %v below target", res.IC)
	}
	// Trace matching the declared distribution: High 25% of each period.
	tr, err := laar.AlternatingTrace(300, 80, 0.25, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	run := func(worst bool) *laar.Metrics {
		sim, err := laar.NewSimulation(d, asg, res.Strategy, tr, laar.SimConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if worst {
			if err := sim.InjectAll(laar.WorstCasePlan(rates, res.Strategy)); err != nil {
				t.Fatal(err)
			}
		}
		m, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	best := run(false)
	worst := run(true)
	if best.DroppedTotal > 0 {
		t.Errorf("best case dropped %v tuples", best.DroppedTotal)
	}
	measured := worst.ProcessedTotal / best.ProcessedTotal
	if measured < res.IC-0.05 {
		t.Fatalf("measured worst-case IC %v below guarantee %v", measured, res.IC)
	}
	t.Logf("grand tour: %d fusions, %v, IC guarantee %.3f, measured %.3f",
		fused.Fusions, res.Outcome, res.IC, measured)
}

// ExampleParseSPL parses a LAAR-SPL application and reports its shape.
func ExampleParseSPL() {
	d, err := laar.ParseSPL(`
app demo
source feed rates 5@0.9 20@0.1
pe work
sink out
connect feed -> work sel 1 cost 1e6
connect work -> out
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d PEs, %d configs\n", d.App.Name(), d.App.NumPEs(), len(d.Configs))
	// Output: demo: 1 PEs, 2 configs
}

// ExampleFuse merges a linear operator chain into one PE.
func ExampleFuse() {
	d, err := laar.ParseSPL(`
app chain
source s rates 10@1
pe a
pe b
sink k
connect s -> a sel 2 cost 1e6
connect a -> b sel 0.5 cost 4e6
connect b -> k
`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := laar.Fuse(d, laar.FuseOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range res.Desc.App.Edges() {
		if res.Desc.App.Component(e.To).Kind == laar.KindPE {
			// γ_a + δ_a·γ_b = 1e6 + 2·4e6; δ_a·δ_b = 2·0.5.
			fmt.Printf("fused: sel %g cost %g\n", e.Selectivity, e.CostCycles)
		}
	}
	// Output: fused: sel 1 cost 9e+06
}

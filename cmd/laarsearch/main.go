// Command laarsearch runs the FT-Search optimiser on an application
// descriptor: it places the replicated PEs on hosts, solves for a
// minimum-cost replica activation strategy meeting the IC constraint, and
// writes the strategy as JSON (the file the HAController is initialised
// with).
//
// Usage:
//
//	laarsearch -desc app.json -ic 0.7 -hosts 5 -deadline 10s -o strategy.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"laar"
)

func main() {
	var (
		descPath = flag.String("desc", "", "application descriptor JSON (required)")
		ic       = flag.Float64("ic", 0.5, "internal-completeness SLA constraint")
		hosts    = flag.Int("hosts", 5, "number of deployment hosts")
		deadline = flag.Duration("deadline", 10*time.Second, "solver deadline (0 = unlimited)")
		workers  = flag.Int("workers", runtime.NumCPU(), "parallel search workers")
		lambda   = flag.Float64("penalty", 0, "penalty per unit IC shortfall (0 = hard constraint)")
		maxLat   = flag.Float64("max-latency", 0, "maximum-latency SLA bound in seconds (0 = none)")
		fuse     = flag.Bool("fuse", false, "apply operator fusion before placement and solving")
		fuseMax  = flag.Float64("fuse-max", 0, "per-PE cost ceiling for fusion (cycles/tuple, 0 = unlimited)")
		ckptOvh  = flag.Float64("ckpt-overhead", -1, "fractional CPU overhead of checkpoint mode (enables the hybrid {active, checkpoint, nothing} decision space; < 0 = off)")
		ckptPhi  = flag.Float64("ckpt-phi", 0.9, "completeness guarantee credited to a checkpointed pair (with -ckpt-overhead)")
		warm     = flag.Bool("warm", false, "after the solve, replay a rate-shift schedule through the retained incremental solver and report per-shift resolve latency, explored nodes and the warm-vs-cold node ratio")
		shifts   = flag.String("shifts", "", "comma-separated cfg=scale rate shifts for -warm (default: a 1.05/0.95/1.0 scale ladder over every configuration)")
		anytime  = flag.Bool("anytime", false, "run -warm re-solves in anytime mode: each Resolve returns its best incumbent when -resolve-budget expires")
		rbudget  = flag.Duration("resolve-budget", 50*time.Millisecond, "per-Resolve wall-clock budget for -anytime")
		out      = flag.String("o", "", "strategy output file (default stdout)")
	)
	flag.Parse()
	if *descPath == "" {
		fatal(fmt.Errorf("missing -desc"))
	}
	d, err := laar.LoadDescriptorFile(*descPath)
	if err != nil {
		fatal(err)
	}
	if *fuse {
		res, err := laar.Fuse(d, laar.FuseOptions{MaxCostCycles: *fuseMax})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "fusion: %d merges, %d PEs -> %d PEs\n",
			res.Fusions, d.App.NumPEs(), res.Desc.App.NumPEs())
		d = res.Desc
	}
	rates := laar.NewRates(d)
	asg, err := laar.PlaceLPT(rates, laar.DefaultReplication, *hosts)
	if err != nil {
		fatal(err)
	}
	opts := laar.SolveOptions{
		ICMin:         *ic,
		Deadline:      *deadline,
		Workers:       *workers,
		PenaltyLambda: *lambda,
		MaxLatency:    *maxLat,
	}
	if *ckptOvh >= 0 {
		opts.Checkpoint = &laar.CheckpointOptions{OverheadFrac: *ckptOvh, Phi: *ckptPhi}
	}
	res, err := laar.Solve(rates, asg, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "outcome=%v elapsed=%v nodes=%d\n", res.Outcome, res.Elapsed.Round(time.Millisecond), res.Stats.Nodes)
	if res.Strategy == nil {
		fmt.Fprintf(os.Stderr, "no strategy: %v\n", res.Outcome)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "cost=%.4g cycles  IC=%.4f  first/optimal cost=%.3f  active=%d/%d\n",
		res.Cost, res.IC, res.FirstCost/res.Cost,
		res.Strategy.TotalActive(), res.Strategy.NumConfigs()*res.Strategy.NumPEs()*res.Strategy.K)
	if res.FT != nil {
		active, none, ckpt := res.FT.Counts()
		fmt.Fprintf(os.Stderr, "ft plan: active=%d checkpoint=%d none=%d (per configuration × PE)\n",
			active, ckpt, none)
	}
	for p := laar.PruneCPU; p <= laar.PruneDOM; p++ {
		fmt.Fprintf(os.Stderr, "pruning %-5s: fired %d times, avg height %.1f\n",
			p, res.Stats.Prunes[p], res.Stats.AvgPruneHeight(p))
	}
	if *warm {
		var budget time.Duration
		if *anytime {
			budget = *rbudget
		}
		if err := warmSweep(rates, asg, opts, budget, *shifts); err != nil {
			fatal(err)
		}
	}
	enc, err := json.MarshalIndent(res.Strategy, "", "  ")
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		fmt.Println(string(enc))
		return
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fatal(err)
	}
}

// warmSweep replays a rate-shift schedule twice — once through a retained
// incremental solver (warm) and once through a fresh solver per shift
// (cold) — and reports each shift's resolve latency, explored nodes and
// the warm-vs-cold node ratio. A positive budget runs the warm leg in
// anytime mode.
func warmSweep(rates *laar.Rates, asg *laar.Assignment, opts laar.SolveOptions, budget time.Duration, spec string) error {
	shifts, err := parseShifts(spec, rates.Descriptor().NumConfigs())
	if err != nil {
		return err
	}
	sv, err := laar.NewSolver(rates, asg, laar.SolverConfig{Opts: opts, ResolveBudget: budget})
	if err != nil {
		return err
	}
	if _, err := sv.Solve(); err != nil {
		return err
	}
	mode := "exhaustive"
	if budget > 0 {
		mode = fmt.Sprintf("anytime, budget %v", budget)
	}
	fmt.Fprintf(os.Stderr, "warm sweep: %d shifts (%s)\n", len(shifts), mode)
	scales := make([]float64, rates.Descriptor().NumConfigs())
	for i := range scales {
		scales[i] = 1
	}
	var warmTotal, coldTotal int64
	for i, sh := range shifts {
		start := time.Now()
		wres, err := sv.Resolve(sh)
		if err != nil {
			return err
		}
		latency := time.Since(start)

		// The cold reference: a fresh solver, handed the accumulated scales
		// in one Resolve, searches the identical shifted instance with no
		// incumbent to seed from.
		scales[sh.Cfg] = sh.Scale
		cold, err := laar.NewSolver(rates, asg, laar.SolverConfig{Opts: opts})
		if err != nil {
			return err
		}
		var all []laar.Shift
		for cfg, scale := range scales {
			all = append(all, laar.Shift{Cfg: cfg, Scale: scale})
		}
		cres, err := cold.Resolve(all...)
		if err != nil {
			return err
		}
		warmTotal += wres.Stats.Nodes
		coldTotal += cres.Stats.Nodes
		ratio := float64(cres.Stats.Nodes) / float64(max64(wres.Stats.Nodes, 1))
		fmt.Fprintf(os.Stderr,
			"  shift %d: cfg=%d scale=%.2f  outcome=%v warm=%v latency=%v nodes=%d  cold nodes=%d  ratio=%.1fx\n",
			i+1, sh.Cfg, sh.Scale, wres.Outcome, wres.WarmStart,
			latency.Round(time.Microsecond), wres.Stats.Nodes, cres.Stats.Nodes, ratio)
	}
	if warmTotal > 0 {
		fmt.Fprintf(os.Stderr, "  total: warm nodes=%d cold nodes=%d  ratio=%.1fx\n",
			warmTotal, coldTotal, float64(coldTotal)/float64(warmTotal))
	}
	return nil
}

// parseShifts parses a comma-separated cfg=scale list; an empty spec
// expands to a 1.05/0.95/1.0 scale ladder over every configuration —
// shifts gentle enough for the incumbent to survive and seed the warm
// re-solve.
func parseShifts(spec string, numConfigs int) ([]laar.Shift, error) {
	if spec == "" {
		var out []laar.Shift
		for cfg := 0; cfg < numConfigs; cfg++ {
			for _, scale := range []float64{1.05, 0.95, 1.0} {
				out = append(out, laar.Shift{Cfg: cfg, Scale: scale})
			}
		}
		return out, nil
	}
	var out []laar.Shift
	for _, part := range strings.Split(spec, ",") {
		var sh laar.Shift
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d=%f", &sh.Cfg, &sh.Scale); err != nil {
			return nil, fmt.Errorf("bad shift %q (want cfg=scale): %w", part, err)
		}
		if sh.Cfg < 0 || sh.Cfg >= numConfigs {
			return nil, fmt.Errorf("shift %q names configuration %d outside [0,%d)", part, sh.Cfg, numConfigs)
		}
		if sh.Scale <= 0 {
			return nil, fmt.Errorf("shift %q has non-positive scale", part)
		}
		out = append(out, sh)
	}
	return out, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "laarsearch:", err)
	os.Exit(1)
}

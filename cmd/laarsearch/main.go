// Command laarsearch runs the FT-Search optimiser on an application
// descriptor: it places the replicated PEs on hosts, solves for a
// minimum-cost replica activation strategy meeting the IC constraint, and
// writes the strategy as JSON (the file the HAController is initialised
// with).
//
// Usage:
//
//	laarsearch -desc app.json -ic 0.7 -hosts 5 -deadline 10s -o strategy.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"laar"
)

func main() {
	var (
		descPath = flag.String("desc", "", "application descriptor JSON (required)")
		ic       = flag.Float64("ic", 0.5, "internal-completeness SLA constraint")
		hosts    = flag.Int("hosts", 5, "number of deployment hosts")
		deadline = flag.Duration("deadline", 10*time.Second, "solver deadline (0 = unlimited)")
		workers  = flag.Int("workers", runtime.NumCPU(), "parallel search workers")
		lambda   = flag.Float64("penalty", 0, "penalty per unit IC shortfall (0 = hard constraint)")
		maxLat   = flag.Float64("max-latency", 0, "maximum-latency SLA bound in seconds (0 = none)")
		fuse     = flag.Bool("fuse", false, "apply operator fusion before placement and solving")
		fuseMax  = flag.Float64("fuse-max", 0, "per-PE cost ceiling for fusion (cycles/tuple, 0 = unlimited)")
		ckptOvh  = flag.Float64("ckpt-overhead", -1, "fractional CPU overhead of checkpoint mode (enables the hybrid {active, checkpoint, nothing} decision space; < 0 = off)")
		ckptPhi  = flag.Float64("ckpt-phi", 0.9, "completeness guarantee credited to a checkpointed pair (with -ckpt-overhead)")
		out      = flag.String("o", "", "strategy output file (default stdout)")
	)
	flag.Parse()
	if *descPath == "" {
		fatal(fmt.Errorf("missing -desc"))
	}
	d, err := laar.LoadDescriptorFile(*descPath)
	if err != nil {
		fatal(err)
	}
	if *fuse {
		res, err := laar.Fuse(d, laar.FuseOptions{MaxCostCycles: *fuseMax})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "fusion: %d merges, %d PEs -> %d PEs\n",
			res.Fusions, d.App.NumPEs(), res.Desc.App.NumPEs())
		d = res.Desc
	}
	rates := laar.NewRates(d)
	asg, err := laar.PlaceLPT(rates, laar.DefaultReplication, *hosts)
	if err != nil {
		fatal(err)
	}
	opts := laar.SolveOptions{
		ICMin:         *ic,
		Deadline:      *deadline,
		Workers:       *workers,
		PenaltyLambda: *lambda,
		MaxLatency:    *maxLat,
	}
	if *ckptOvh >= 0 {
		opts.Checkpoint = &laar.CheckpointOptions{OverheadFrac: *ckptOvh, Phi: *ckptPhi}
	}
	res, err := laar.Solve(rates, asg, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "outcome=%v elapsed=%v nodes=%d\n", res.Outcome, res.Elapsed.Round(time.Millisecond), res.Stats.Nodes)
	if res.Strategy == nil {
		fmt.Fprintf(os.Stderr, "no strategy: %v\n", res.Outcome)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "cost=%.4g cycles  IC=%.4f  first/optimal cost=%.3f  active=%d/%d\n",
		res.Cost, res.IC, res.FirstCost/res.Cost,
		res.Strategy.TotalActive(), res.Strategy.NumConfigs()*res.Strategy.NumPEs()*res.Strategy.K)
	if res.FT != nil {
		active, none, ckpt := res.FT.Counts()
		fmt.Fprintf(os.Stderr, "ft plan: active=%d checkpoint=%d none=%d (per configuration × PE)\n",
			active, ckpt, none)
	}
	for p := laar.PruneCPU; p <= laar.PruneDOM; p++ {
		fmt.Fprintf(os.Stderr, "pruning %-5s: fired %d times, avg height %.1f\n",
			p, res.Stats.Prunes[p], res.Stats.AvgPruneHeight(p))
	}
	enc, err := json.MarshalIndent(res.Strategy, "", "  ")
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		fmt.Println(string(enc))
		return
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "laarsearch:", err)
	os.Exit(1)
}

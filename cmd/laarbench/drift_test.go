package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func rep(entries ...BenchEntry) *Report {
	return &Report{Schema: "laar-bench/1", Benchmarks: entries}
}

func entry(name, pkg string, ns, allocs float64) BenchEntry {
	return BenchEntry{Name: name, Package: pkg, Iterations: 1, NsPerOp: ns, AllocsPerOp: allocs}
}

var defaultCfg = DriftConfig{AllocsFrac: 0.10, AllocsAbs: 8, NsFrac: 0.30}

// TestFindBaselineNewestSuffix pins the baseline-selection rule: highest
// numeric suffix wins, the file being written is excluded, and non-matching
// names are ignored.
func TestFindBaselineNewestSuffix(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_2.json", "BENCH_10.json", "BENCH_3.json", "BENCH_extra.json", "notes.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := findBaseline(dir, filepath.Join(dir, "BENCH_11.json"))
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_10.json" {
		t.Errorf("picked %q, want BENCH_10.json", got)
	}

	// The report the current run writes must not become its own baseline.
	got, err = findBaseline(dir, filepath.Join(dir, "BENCH_10.json"))
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_3.json" {
		t.Errorf("with BENCH_10 excluded picked %q, want BENCH_3.json", got)
	}

	got, err = findBaseline(t.TempDir(), "")
	if err != nil {
		t.Fatal(err)
	}
	if got != "" {
		t.Errorf("empty dir yielded baseline %q", got)
	}
}

// TestDriftAllocsGate exercises the hard allocation gate: within
// base*(1+frac)+abs passes, beyond it fails, and unmatched benchmarks are
// ignored.
func TestDriftAllocsGate(t *testing.T) {
	base := rep(
		entry("BenchmarkA", "laar", 100, 100),
		entry("BenchmarkB", "laar", 100, 0),
		entry("BenchmarkGone", "laar", 100, 5),
	)
	cur := rep(
		entry("BenchmarkA", "laar", 100, 118),   // limit 100*1.1+8 = 118: at the limit, passes
		entry("BenchmarkB", "laar", 100, 9),     // limit 0*1.1+8 = 8: 9 > 8 fails
		entry("BenchmarkNew", "laar", 100, 1e6), // no baseline: ignored
	)
	hard, warn := compareReports(base, cur, defaultCfg)
	if len(warn) != 0 {
		t.Errorf("unexpected ns warnings: %v", warn)
	}
	if len(hard) != 1 || hard[0].Name != "BenchmarkB" {
		t.Fatalf("hard findings = %v, want exactly BenchmarkB", hard)
	}
	if !hard[0].Hard || hard[0].Metric != "allocs/op" {
		t.Errorf("finding misclassified: %+v", hard[0])
	}
}

// TestDriftNsNormalization pins the median normalization: a uniformly
// slower host produces no warnings, while a single benchmark drifting
// against the rest of the suite does.
func TestDriftNsNormalization(t *testing.T) {
	base := rep(
		entry("BenchmarkA", "laar", 100, 0),
		entry("BenchmarkB", "laar", 200, 0),
		entry("BenchmarkC", "laar", 300, 0),
		entry("BenchmarkD", "laar", 400, 0),
	)
	// Every benchmark 2x slower: median ratio 2, normalized ratios all 1.
	uniform := rep(
		entry("BenchmarkA", "laar", 200, 0),
		entry("BenchmarkB", "laar", 400, 0),
		entry("BenchmarkC", "laar", 600, 0),
		entry("BenchmarkD", "laar", 800, 0),
	)
	hard, warn := compareReports(base, uniform, defaultCfg)
	if len(hard) != 0 || len(warn) != 0 {
		t.Fatalf("uniform slowdown flagged: hard=%v warn=%v", hard, warn)
	}

	// BenchmarkD alone 2x slower: normalized ratio 2/1 = 2 > 1.3.
	skewed := rep(
		entry("BenchmarkA", "laar", 100, 0),
		entry("BenchmarkB", "laar", 200, 0),
		entry("BenchmarkC", "laar", 300, 0),
		entry("BenchmarkD", "laar", 800, 0),
	)
	hard, warn = compareReports(base, skewed, defaultCfg)
	if len(hard) != 0 {
		t.Fatalf("ns drift must not hard-fail with the gate disabled: %v", hard)
	}
	if len(warn) != 1 || warn[0].Name != "BenchmarkD" {
		t.Fatalf("warnings = %v, want exactly BenchmarkD", warn)
	}
	if warn[0].Hard {
		t.Error("ns warning marked hard")
	}
}

// TestDriftNsHardGate exercises the opt-in -drift-fail-ns gate: with
// NsFailFrac set, normalized drift beyond it becomes a hard failure while
// drift between NsFrac and NsFailFrac stays a warning, and the median
// normalization still forgives a uniformly slower host.
func TestDriftNsHardGate(t *testing.T) {
	cfg := DriftConfig{AllocsFrac: 0.10, AllocsAbs: 8, NsFrac: 0.30, NsFailFrac: 0.60}
	base := rep(
		entry("BenchmarkA", "laar", 100, 0),
		entry("BenchmarkB", "laar", 200, 0),
		entry("BenchmarkC", "laar", 300, 0),
		entry("BenchmarkD", "laar", 400, 0),
		entry("BenchmarkE", "laar", 500, 0),
	)
	// Host uniformly 3x slower; D drifts 1.5x against the suite (warn band),
	// E drifts 2x (past the 1.6 hard limit).
	cur := rep(
		entry("BenchmarkA", "laar", 300, 0),
		entry("BenchmarkB", "laar", 600, 0),
		entry("BenchmarkC", "laar", 900, 0),
		entry("BenchmarkD", "laar", 1800, 0),
		entry("BenchmarkE", "laar", 3000, 0),
	)
	hard, warn := compareReports(base, cur, cfg)
	if len(hard) != 1 || hard[0].Name != "BenchmarkE" || !hard[0].Hard {
		t.Fatalf("hard findings = %v, want exactly BenchmarkE", hard)
	}
	if hard[0].Metric != "ns/op (normalized)" || hard[0].Limit != 1.6 {
		t.Errorf("hard finding misclassified: %+v", hard[0])
	}
	if len(warn) != 1 || warn[0].Name != "BenchmarkD" {
		t.Fatalf("warnings = %v, want exactly BenchmarkD", warn)
	}
}

// TestEnforceCeilingsHugeCell verifies every BenchmarkHugeCell shard-count
// sub-benchmark is held to the DoTick allocation ceiling.
func TestEnforceCeilingsHugeCell(t *testing.T) {
	ok := rep(
		entry("BenchmarkHugeCell/shards=1", "laar/internal/engine", 100, 0),
		entry("BenchmarkHugeCell/shards=4", "laar/internal/engine", 100, maxDoTickAllocs),
	)
	if err := enforceCeilings(ok, maxDoTickAllocs, maxSimTickAllocs, maxWarmResolveAllocs); err != nil {
		t.Fatalf("at-ceiling report rejected: %v", err)
	}
	bad := rep(
		entry("BenchmarkHugeCell/shards=1", "laar/internal/engine", 100, 0),
		entry("BenchmarkHugeCell/shards=4", "laar/internal/engine", 100, maxDoTickAllocs+1),
	)
	if err := enforceCeilings(bad, maxDoTickAllocs, maxSimTickAllocs, maxWarmResolveAllocs); err == nil {
		t.Fatal("sharded tick allocation regression passed the ceiling gate")
	}
}

// TestEnforceCeilingsWarmResolve verifies the warm incremental-resolve
// sub-benchmark is held to its own allocation ceiling: a warm Resolve
// runs out of the retained solver's arenas, so allocating per explored
// node must fail the gate.
func TestEnforceCeilingsWarmResolve(t *testing.T) {
	ok := rep(
		entry("BenchmarkIncrementalResolve/cold", "laar", 100, 10*maxWarmResolveAllocs),
		entry("BenchmarkIncrementalResolve/warm", "laar", 100, maxWarmResolveAllocs),
	)
	if err := enforceCeilings(ok, maxDoTickAllocs, maxSimTickAllocs, maxWarmResolveAllocs); err != nil {
		t.Fatalf("at-ceiling report rejected: %v", err)
	}
	bad := rep(
		entry("BenchmarkIncrementalResolve/warm", "laar", 100, maxWarmResolveAllocs+1),
	)
	if err := enforceCeilings(bad, maxDoTickAllocs, maxSimTickAllocs, maxWarmResolveAllocs); err == nil {
		t.Fatal("warm-resolve allocation regression passed the ceiling gate")
	}
}

// TestDriftTooFewPoints verifies the median normalization disarms itself
// below three matched wall-clock points, where a median is meaningless.
func TestDriftTooFewPoints(t *testing.T) {
	base := rep(entry("BenchmarkA", "laar", 100, 0), entry("BenchmarkB", "laar", 100, 0))
	cur := rep(entry("BenchmarkA", "laar", 100, 0), entry("BenchmarkB", "laar", 900, 0))
	hard, warn := compareReports(base, cur, defaultCfg)
	if len(hard) != 0 || len(warn) != 0 {
		t.Fatalf("two-point suite produced findings: hard=%v warn=%v", hard, warn)
	}
}

// TestDriftSamePackageDifferentName verifies matching keys on name AND
// package so identically named benchmarks in different packages do not
// cross-contaminate.
func TestDriftPackageScoping(t *testing.T) {
	base := rep(entry("BenchmarkX", "laar", 100, 10), entry("BenchmarkX", "laar/internal/engine", 100, 1000))
	cur := rep(entry("BenchmarkX", "laar", 100, 12), entry("BenchmarkX", "laar/internal/engine", 100, 1000))
	hard, _ := compareReports(base, cur, defaultCfg)
	if len(hard) != 0 {
		t.Fatalf("cross-package key collision: %v", hard)
	}
}

// TestCheckDriftEndToEnd round-trips a baseline file through checkDrift.
func TestCheckDriftEndToEnd(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "BENCH_1.json")
	writeJSON(t, basePath, rep(
		entry("BenchmarkA", "laar", 100, 10),
		entry("BenchmarkB", "laar", 100, 10),
		entry("BenchmarkC", "laar", 100, 10),
	))

	ok := rep(
		entry("BenchmarkA", "laar", 110, 10),
		entry("BenchmarkB", "laar", 105, 11),
		entry("BenchmarkC", "laar", 95, 10),
	)
	if err := checkDrift(ok, dir, filepath.Join(dir, "BENCH_2.json"), defaultCfg); err != nil {
		t.Fatalf("clean report failed drift check: %v", err)
	}

	bad := rep(
		entry("BenchmarkA", "laar", 100, 10),
		entry("BenchmarkB", "laar", 100, 10),
		entry("BenchmarkC", "laar", 100, 40), // 40 > 10*1.1+8 = 19
	)
	if err := checkDrift(bad, dir, filepath.Join(dir, "BENCH_2.json"), defaultCfg); err == nil {
		t.Fatal("allocation regression passed the drift check")
	}

	// No baseline at all: not an error.
	if err := checkDrift(bad, t.TempDir(), "", defaultCfg); err != nil {
		t.Fatalf("missing baseline must not fail: %v", err)
	}
}

func writeJSON(t *testing.T, path string, r *Report) {
	t.Helper()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

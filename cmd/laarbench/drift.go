// Cross-baseline drift detection: the freshly measured report is compared
// against the newest checked-in BENCH_<n>.json so allocation regressions
// fail CI and suspicious per-benchmark slowdowns are surfaced even when
// the absolute clock speed of the host changed between runs.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// DriftConfig holds the drift thresholds.
//
// Allocations are deterministic per benchmark, so they gate hard: the run
// fails when current allocs/op exceeds baseline*(1+AllocsFrac)+AllocsAbs.
// Wall-clock is not comparable across hosts, so ns/op ratios are first
// normalized by the suite-wide median current/baseline ratio (which absorbs
// a uniformly faster or slower machine) and only benchmarks that drift
// beyond NsFrac of that median are reported — as warnings by default.
// NsFailFrac, when positive, promotes normalized drift past it to a hard
// failure: an opt-in gate for environments (pinned CI runners, laboratory
// hosts) where the median normalization makes wall-clock comparable enough
// to block merges on.
type DriftConfig struct {
	AllocsFrac float64
	AllocsAbs  float64
	NsFrac     float64
	NsFailFrac float64
}

// DriftFinding is one benchmark that moved past a drift threshold.
type DriftFinding struct {
	Name    string
	Package string
	Metric  string  // "allocs/op" or "ns/op (normalized)"
	Base    float64 // baseline value (ns findings: normalized ratio of 1)
	Cur     float64 // current value (ns findings: normalized ratio)
	Limit   float64 // threshold that was crossed
	Hard    bool    // true = regression gate, false = advisory warning
}

func (f DriftFinding) String() string {
	return fmt.Sprintf("%s (%s): %s %.3g exceeds limit %.3g (baseline %.3g)",
		f.Name, f.Package, f.Metric, f.Cur, f.Limit, f.Base)
}

var benchSuffix = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// findBaseline scans dir for BENCH_<n>.json files, excluding the path the
// current run is writing to, and returns the one with the highest numeric
// suffix. An empty path with a nil error means no baseline exists yet.
func findBaseline(dir, exclude string) (string, error) {
	names, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	excludeAbs, _ := filepath.Abs(exclude)
	best, bestN := "", -1
	for _, p := range names {
		abs, _ := filepath.Abs(p)
		if abs == excludeAbs {
			continue
		}
		m := benchSuffix.FindStringSubmatch(filepath.Base(p))
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		if n > bestN {
			best, bestN = p, n
		}
	}
	return best, nil
}

// loadReport parses one BENCH_<n>.json.
func loadReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	if err := json.Unmarshal(raw, rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// benchKey identifies a benchmark across reports.
type benchKey struct{ name, pkg string }

// compareReports matches benchmarks by name+package and applies the drift
// thresholds. Hard findings (allocation regressions) and advisory warnings
// (normalized ns/op drift) are returned separately.
func compareReports(base, cur *Report, cfg DriftConfig) (hard, warn []DriftFinding) {
	baseline := make(map[benchKey]BenchEntry, len(base.Benchmarks))
	for _, e := range base.Benchmarks {
		baseline[benchKey{e.Name, e.Package}] = e
	}

	type pair struct{ b, c BenchEntry }
	var matched []pair
	for _, e := range cur.Benchmarks {
		if b, ok := baseline[benchKey{e.Name, e.Package}]; ok {
			matched = append(matched, pair{b, e})
		}
	}

	for _, p := range matched {
		limit := p.b.AllocsPerOp*(1+cfg.AllocsFrac) + cfg.AllocsAbs
		if p.c.AllocsPerOp > limit {
			hard = append(hard, DriftFinding{
				Name: p.c.Name, Package: p.c.Package, Metric: "allocs/op",
				Base: p.b.AllocsPerOp, Cur: p.c.AllocsPerOp, Limit: limit, Hard: true,
			})
		}
	}

	// Normalize wall clock by the median current/baseline ratio: a machine
	// that is uniformly 2x slower yields ratio 2 everywhere, median 2, and
	// every normalized ratio is 1 — only relative per-benchmark drift shows.
	var ratios []float64
	for _, p := range matched {
		if p.b.NsPerOp > 0 && p.c.NsPerOp > 0 {
			ratios = append(ratios, p.c.NsPerOp/p.b.NsPerOp)
		}
	}
	if len(ratios) < 3 {
		return hard, warn // too few points for the median to mean anything
	}
	med := median(ratios)
	if med <= 0 {
		return hard, warn
	}
	for _, p := range matched {
		if p.b.NsPerOp <= 0 || p.c.NsPerOp <= 0 {
			continue
		}
		norm := (p.c.NsPerOp / p.b.NsPerOp) / med
		switch {
		case cfg.NsFailFrac > 0 && norm > 1+cfg.NsFailFrac:
			hard = append(hard, DriftFinding{
				Name: p.c.Name, Package: p.c.Package, Metric: "ns/op (normalized)",
				Base: 1, Cur: norm, Limit: 1 + cfg.NsFailFrac, Hard: true,
			})
		case norm > 1+cfg.NsFrac:
			warn = append(warn, DriftFinding{
				Name: p.c.Name, Package: p.c.Package, Metric: "ns/op (normalized)",
				Base: 1, Cur: norm, Limit: 1 + cfg.NsFrac,
			})
		}
	}
	return hard, warn
}

// median returns the middle value of xs (mean of the two middle values for
// even lengths). xs is not modified.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// checkDrift loads the newest baseline and compares the current report
// against it. Warnings print to stderr; hard findings become the returned
// error. A missing baseline is not an error — the first PR has nothing to
// drift from.
func checkDrift(rep *Report, dir, exclude string, cfg DriftConfig) error {
	path, err := findBaseline(dir, exclude)
	if err != nil {
		return err
	}
	if path == "" {
		fmt.Fprintln(os.Stderr, "laarbench: no BENCH_<n>.json baseline found, skipping drift check")
		return nil
	}
	base, err := loadReport(path)
	if err != nil {
		return err
	}
	hard, warn := compareReports(base, rep, cfg)
	for _, f := range warn {
		fmt.Fprintf(os.Stderr, "laarbench: drift warning vs %s: %s\n", filepath.Base(path), f)
	}
	if len(hard) > 0 {
		for _, f := range hard {
			fmt.Fprintf(os.Stderr, "laarbench: drift FAILURE vs %s: %s\n", filepath.Base(path), f)
		}
		return fmt.Errorf("%d benchmark(s) regressed vs baseline %s", len(hard), filepath.Base(path))
	}
	fmt.Fprintf(os.Stderr, "laarbench: drift check vs %s: %d matched, %d warnings, no regressions\n",
		filepath.Base(path), matchedCount(base, rep), len(warn))
	return nil
}

// matchedCount reports how many benchmarks exist in both reports.
func matchedCount(base, cur *Report) int {
	keys := make(map[benchKey]bool, len(base.Benchmarks))
	for _, e := range base.Benchmarks {
		keys[benchKey{e.Name, e.Package}] = true
	}
	n := 0
	for _, e := range cur.Benchmarks {
		if keys[benchKey{e.Name, e.Package}] {
			n++
		}
	}
	return n
}

// Command laarbench is the benchmark-regression harness: it runs the Go
// benchmark suite (the BenchmarkFig* figure reproductions plus the
// engine/experiments microbenchmarks), measures the experiment-matrix
// wall clock serially and in parallel, and emits one BENCH_<n>.json so
// the performance trajectory is tracked across PRs.
//
// It exits non-zero when BenchmarkDoTick's allocs/op exceeds the
// checked-in ceiling — the CI smoke job uses this as the regression gate
// for the engine hot path — or when any benchmark's allocs/op regressed
// against the newest checked-in BENCH_<n>.json baseline. Wall-clock drift
// is advisory only: ns/op ratios are normalized by the suite-wide median
// so a faster or slower host does not trigger noise, and outliers print
// as warnings.
//
// Usage:
//
//	laarbench -out BENCH_2.json                  # full run
//	laarbench -benchtime 1x -apps 4 -out ci.json # CI smoke settings
//	laarbench -skip-bench                        # matrix speedup only
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"time"

	"laar/internal/engine"
	"laar/internal/experiments"
)

// maxDoTickAllocs is the checked-in ceiling for BenchmarkDoTick allocs/op.
// The zero-allocation hot path holds it at 0; the small headroom tolerates
// incidental instrumentation without letting the seed's 64 allocs/op
// regression class back in.
const maxDoTickAllocs = 4

// maxSimTickAllocs is the checked-in ceiling for BenchmarkSimulationTick
// allocs/op. One iteration is the run phase of a 1000-tick simulation
// (construction is excluded by the benchmark's StopTimer), so this bounds
// the monitor + sample path: arena-carved snapshots and pooled
// reconfiguration records hold it near 16; the ceiling keeps the
// one-slice-per-PE regression class (hundreds of objects) out.
const maxSimTickAllocs = 100

// maxWarmResolveAllocs is the checked-in ceiling for
// BenchmarkIncrementalResolve/warm allocs/op. A warm re-solve runs
// entirely out of the retained solver's arenas — around 29 allocs/op for
// the result, strategy clone and shift bookkeeping — so the ceiling keeps
// the per-explored-node allocation regression class (tens of thousands of
// objects per op) out while tolerating incidental result-shape growth.
const maxWarmResolveAllocs = 64

// BenchEntry is one parsed `go test -bench` result line.
type BenchEntry struct {
	Name        string  `json:"name"`
	Package     string  `json:"package"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds custom b.ReportMetric units (ticks/op, apps, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// MatrixReport records the serial-versus-parallel experiment-matrix study.
type MatrixReport struct {
	Apps            int     `json:"apps"`
	PEs             int     `json:"pes"`
	Hosts           int     `json:"hosts"`
	Seed            int64   `json:"seed"`
	Cells           int     `json:"cells"`
	Workers         int     `json:"workers"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
	// Deterministic reports whether the parallel matrix was deeply equal
	// to the serial one (it must always be true).
	Deterministic bool `json:"deterministic"`
}

// Report is the BENCH_<n>.json schema.
type Report struct {
	Schema      string        `json:"schema"`
	GeneratedAt string        `json:"generated_at"`
	GoVersion   string        `json:"go_version"`
	GOOS        string        `json:"goos"`
	GOARCH      string        `json:"goarch"`
	GOMAXPROCS  int           `json:"gomaxprocs"`
	Benchmarks  []BenchEntry  `json:"benchmarks"`
	Matrix      *MatrixReport `json:"matrix,omitempty"`
}

func main() {
	var (
		out        = flag.String("out", "BENCH.json", "output JSON path")
		benchPat   = flag.String("bench", ".", "benchmark regex passed to go test -bench")
		benchtime  = flag.String("benchtime", "", "go test -benchtime (empty = default 1s)")
		pkgList    = flag.String("packages", ". ./internal/engine ./internal/experiments ./internal/sim", "space-separated packages for the benchmark suite")
		skipBench  = flag.Bool("skip-bench", false, "skip the go test benchmark suite")
		skipMatrix = flag.Bool("skip-matrix", false, "skip the matrix speedup study")
		apps       = flag.Int("apps", 8, "matrix corpus size")
		pes        = flag.Int("pes", 16, "PEs per matrix application")
		hosts      = flag.Int("hosts", 4, "hosts per matrix deployment")
		seed       = flag.Int64("seed", 42, "matrix corpus seed")
		reps       = flag.Int("reps", 3, "matrix timing repetitions (best of)")
		workers    = flag.Int("matrix-workers", 0, "parallel matrix workers (0 = max(8, NumCPU))")
		maxAllocs  = flag.Float64("max-tick-allocs", maxDoTickAllocs, "fail when BenchmarkDoTick allocs/op exceeds this ceiling")
		maxSimTick = flag.Float64("max-simtick-allocs", maxSimTickAllocs, "fail when BenchmarkSimulationTick allocs/op (run phase of 1000 ticks) exceeds this ceiling")
		maxWarm    = flag.Float64("max-warm-resolve-allocs", maxWarmResolveAllocs, "fail when BenchmarkIncrementalResolve/warm allocs/op exceeds this ceiling")

		driftDir   = flag.String("drift-baselines", ".", "directory scanned for BENCH_<n>.json baselines (highest numeric suffix wins)")
		allocsFrac = flag.Float64("drift-allocs-frac", 0.10, "fractional allocs/op headroom over the baseline before the drift gate fails")
		allocsAbs  = flag.Float64("drift-allocs-abs", 8, "absolute allocs/op headroom added on top of the fractional one")
		nsFrac     = flag.Float64("drift-ns-frac", 0.30, "warn when a benchmark's median-normalized ns/op ratio drifts beyond this fraction")
		nsFail     = flag.Float64("drift-fail-ns", 0, "fail (not just warn) when a benchmark's median-normalized ns/op ratio drifts beyond this fraction; 0 disables the hard gate — opt in on pinned runners only")
		skipDrift  = flag.Bool("skip-drift", false, "skip the cross-baseline drift check")
	)
	flag.Parse()

	rep := &Report{
		Schema:      "laar-bench/1",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}

	if !*skipBench {
		entries, err := runBenchSuite(*benchPat, *benchtime, strings.Fields(*pkgList))
		if err != nil {
			fatal(err)
		}
		rep.Benchmarks = entries
	}
	if !*skipMatrix {
		m, err := runMatrixStudy(*apps, *pes, *hosts, *seed, *reps, *workers)
		if err != nil {
			fatal(err)
		}
		rep.Matrix = m
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("laarbench: wrote %s (%d benchmarks", *out, len(rep.Benchmarks))
	if rep.Matrix != nil {
		fmt.Printf(", matrix speedup %.2f× on %d workers", rep.Matrix.Speedup, rep.Matrix.Workers)
	}
	fmt.Println(")")

	if err := enforceCeilings(rep, *maxAllocs, *maxSimTick, *maxWarm); err != nil {
		fatal(err)
	}
	if !*skipDrift && len(rep.Benchmarks) > 0 {
		cfg := DriftConfig{AllocsFrac: *allocsFrac, AllocsAbs: *allocsAbs, NsFrac: *nsFrac, NsFailFrac: *nsFail}
		if err := checkDrift(rep, *driftDir, *out, cfg); err != nil {
			fatal(err)
		}
	}
}

// runBenchSuite executes `go test -bench` over the packages and parses the
// standard benchmark output format.
func runBenchSuite(pattern, benchtime string, pkgs []string) ([]BenchEntry, error) {
	args := []string{"test", "-run", "^$", "-bench", pattern, "-benchmem", "-count", "1"}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	args = append(args, pkgs...)
	fmt.Fprintf(os.Stderr, "laarbench: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("benchmark suite failed: %w\n%s", err, buf.String())
	}
	return parseBenchOutput(&buf)
}

// parseBenchOutput extracts every benchmark result line, tracking the
// `pkg:` headers so entries are attributed to their package.
func parseBenchOutput(r *bytes.Buffer) ([]BenchEntry, error) {
	var entries []BenchEntry
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a Benchmark... line that is not a result row
		}
		e := BenchEntry{
			// Trim the -GOMAXPROCS suffix so names are stable across hosts.
			Name:       strings.TrimSuffix(fields[0], fmt.Sprintf("-%d", runtime.GOMAXPROCS(0))),
			Package:    pkg,
			Iterations: iters,
		}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				e.NsPerOp = val
			case "B/op":
				e.BytesPerOp = val
			case "allocs/op":
				e.AllocsPerOp = val
			default:
				if e.Metrics == nil {
					e.Metrics = make(map[string]float64)
				}
				e.Metrics[unit] = val
			}
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("no benchmark results parsed")
	}
	return entries, nil
}

// runMatrixStudy builds the seed-deterministic corpus and times the full
// (app × variant × scenario) matrix serially and on the worker pool,
// asserting the results are deeply equal. The wall-clock speedup scales
// with physical cores; the determinism check is meaningful regardless,
// because oversubscribed goroutines still interleave their claims.
func runMatrixStudy(apps, pes, hosts int, seed int64, reps, workers int) (*MatrixReport, error) {
	fmt.Fprintf(os.Stderr, "laarbench: building %d-app matrix corpus...\n", apps)
	corpus, err := experiments.BuildCorpus(experiments.CorpusParams{
		NumApps:  apps,
		NumPEs:   pes,
		NumHosts: hosts,
		Seed:     seed,
	})
	if err != nil {
		return nil, err
	}
	if workers < 1 {
		workers = runtime.NumCPU()
		if workers < 8 {
			workers = 8
		}
	}
	if reps < 1 {
		reps = 1
	}
	time1, rr1, err := timeMatrix(corpus, 1, reps)
	if err != nil {
		return nil, err
	}
	timeN, rrN, err := timeMatrix(corpus, workers, reps)
	if err != nil {
		return nil, err
	}
	m := &MatrixReport{
		Apps:            apps,
		PEs:             pes,
		Hosts:           hosts,
		Seed:            seed,
		Cells:           len(corpus) * 6 * 3, // variants × scenarios
		Workers:         workers,
		SerialSeconds:   time1.Seconds(),
		ParallelSeconds: timeN.Seconds(),
		Speedup:         time1.Seconds() / timeN.Seconds(),
		Deterministic:   reflect.DeepEqual(rr1, rrN),
	}
	if !m.Deterministic {
		return m, fmt.Errorf("parallel matrix diverged from serial results")
	}
	return m, nil
}

// timeMatrix runs the matrix reps times at the given parallelism and
// returns the best wall clock with the (identical) results.
func timeMatrix(corpus []*experiments.AppRun, workers, reps int) (time.Duration, *experiments.RuntimeResults, error) {
	best := time.Duration(0)
	var rr *experiments.RuntimeResults
	for i := 0; i < reps; i++ {
		start := time.Now()
		got, err := experiments.RunAllWith(corpus, engine.Config{}, experiments.RunAllOptions{Parallelism: workers})
		if err != nil {
			return 0, nil, err
		}
		elapsed := time.Since(start)
		if rr == nil || elapsed < best {
			best, rr = elapsed, got
		}
	}
	fmt.Fprintf(os.Stderr, "laarbench: matrix on %d worker(s): %v (best of %d)\n", workers, best, reps)
	return best, rr, nil
}

// enforceCeilings applies the checked-in regression gates to the report.
// BenchmarkHugeCell sub-benchmarks share BenchmarkDoTick's ceiling: the
// sharded tick must stay allocation-free at every shard count, on the
// 120k-replica corpus as much as on the default deployment.
func enforceCeilings(rep *Report, maxTickAllocs, maxSimTickAllocs, maxWarmResolve float64) error {
	for _, e := range rep.Benchmarks {
		if e.Name == "BenchmarkDoTick" && e.AllocsPerOp > maxTickAllocs {
			return fmt.Errorf("BenchmarkDoTick allocates %.0f objects/op, ceiling is %.0f — the engine hot path regressed",
				e.AllocsPerOp, maxTickAllocs)
		}
		if strings.HasPrefix(e.Name, "BenchmarkHugeCell/") && e.AllocsPerOp > maxTickAllocs {
			return fmt.Errorf("%s allocates %.0f objects/op, ceiling is %.0f — the sharded tick path regressed",
				e.Name, e.AllocsPerOp, maxTickAllocs)
		}
		if e.Name == "BenchmarkSimulationTick" && e.AllocsPerOp > maxSimTickAllocs {
			return fmt.Errorf("BenchmarkSimulationTick allocates %.0f objects per 1000-tick run, ceiling is %.0f — the monitor/sample path regressed",
				e.AllocsPerOp, maxSimTickAllocs)
		}
		if e.Name == "BenchmarkIncrementalResolve/warm" && e.AllocsPerOp > maxWarmResolve {
			return fmt.Errorf("BenchmarkIncrementalResolve/warm allocates %.0f objects/op, ceiling is %.0f — a warm re-solve must run out of the retained solver's arenas, not allocate per explored node",
				e.AllocsPerOp, maxWarmResolve)
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "laarbench:", err)
	os.Exit(1)
}

// Command laarsim executes one simulated experiment: an application
// descriptor plus a replica activation strategy (from laarsearch, or one of
// the built-in baseline variants) driven by an alternating input trace
// under a chosen failure scenario.
//
// Usage:
//
//	laarsim -desc app.json -strategy strategy.json -scenario worst
//	laarsim -desc app.json -variant sr -duration 300 -scenario best
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"laar"
)

func main() {
	var (
		descPath  = flag.String("desc", "", "application descriptor JSON (required)")
		stratPath = flag.String("strategy", "", "strategy JSON from laarsearch")
		variant   = flag.String("variant", "", "built-in variant instead of -strategy: sr | nr | grd")
		hosts     = flag.Int("hosts", 5, "number of deployment hosts")
		duration  = flag.Float64("duration", 300, "trace duration in seconds")
		period    = flag.Float64("period", 90, "trace period; High is active one third of each period")
		scenario  = flag.String("scenario", "best", "failure scenario: best | worst | crash | ctrl-crash")
		crashHost = flag.Int("crash-host", 0, "host to crash in the crash scenario")
		glitch    = flag.Float64("glitch", 0, "source-rate glitch amplitude in [0, 1)")
		seed      = flag.Int64("seed", 0, "glitch noise seed")
		ctrls     = flag.Int("controllers", 1, "replicated HAController instances (ctrl-crash needs at least 1; the leader crash fails over to a standby when one exists)")
		shards    = flag.Int("shards", 0, "engine shard count; results are bit-identical at every setting (0 = serial)")
	)
	flag.Parse()
	if *descPath == "" {
		fatal(fmt.Errorf("missing -desc"))
	}
	d, err := laar.LoadDescriptorFile(*descPath)
	if err != nil {
		fatal(err)
	}
	rates := laar.NewRates(d)
	asg, err := laar.PlaceLPT(rates, laar.DefaultReplication, *hosts)
	if err != nil {
		fatal(err)
	}

	var strat *laar.Strategy
	switch {
	case *stratPath != "":
		raw, err := os.ReadFile(*stratPath)
		if err != nil {
			fatal(err)
		}
		strat = &laar.Strategy{}
		if err := json.Unmarshal(raw, strat); err != nil {
			fatal(err)
		}
	case *variant == "sr":
		strat = laar.StaticStrategy(d, laar.DefaultReplication)
	case *variant == "grd":
		strat, err = laar.GreedyStrategy(rates, asg)
		if err != nil {
			fatal(err)
		}
	case *variant == "nr":
		grd, err := laar.GreedyStrategy(rates, asg)
		if err != nil {
			fatal(err)
		}
		strat = laar.NonReplicatedStrategy(grd, highCfg(d))
	default:
		fatal(fmt.Errorf("provide -strategy FILE or -variant sr|nr|grd"))
	}

	tr, err := laar.AlternatingTrace(*duration, *period, 1.0/3.0, lowCfg(d), highCfg(d))
	if err != nil {
		fatal(err)
	}
	sim, err := laar.NewSimulation(d, asg, strat, tr, laar.SimConfig{GlitchAmplitude: *glitch, Seed: *seed, Controllers: *ctrls, Shards: *shards})
	if err != nil {
		fatal(err)
	}
	switch *scenario {
	case "best":
	case "worst":
		if err := sim.InjectAll(laar.WorstCasePlan(rates, strat)); err != nil {
			fatal(err)
		}
	case "crash":
		plan, err := laar.HostCrashPlan(asg.NumHosts, *crashHost, *duration/2, 16)
		if err != nil {
			fatal(err)
		}
		if err := sim.InjectAll(plan); err != nil {
			fatal(err)
		}
	case "ctrl-crash":
		plan, err := laar.ControllerCrashPlan(*ctrls, 0, *duration/2, 16)
		if err != nil {
			fatal(err)
		}
		if err := sim.InjectAll(plan); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown scenario %q", *scenario))
	}
	m, err := sim.Run()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("duration        %.0f s\n", m.Duration)
	fmt.Printf("emitted         %.0f tuples\n", m.EmittedTotal)
	fmt.Printf("processed (PEs) %.0f tuples\n", m.ProcessedTotal)
	fmt.Printf("sink output     %.0f tuples\n", m.SinkTotal)
	fmt.Printf("dropped         %.0f tuples\n", m.DroppedTotal)
	fmt.Printf("cpu             %.1f cpu-seconds (%.3g cycles)\n", m.CPUSecondsTotal, m.CPUCyclesTotal)
	fmt.Printf("config switches %d\n", m.ConfigSwitches)
	if m.ControllerFailovers > 0 || m.LeaderlessSeconds > 0 || m.FailSafeActivations > 0 {
		fmt.Printf("ctrl failovers  %d (leaderless %.1f s, fail-safe reversions %d, command retries %d)\n",
			m.ControllerFailovers, m.LeaderlessSeconds, m.FailSafeActivations, m.CommandRetries)
	}
	fmt.Printf("model IC        %.4f (pessimistic bound)\n", laar.IC(rates, strat, laar.Pessimistic{}))
}

func lowCfg(d *laar.Descriptor) int {
	if i := d.ConfigByName("Low"); i >= 0 {
		return i
	}
	return 0
}

func highCfg(d *laar.Descriptor) int {
	if i := d.ConfigByName("High"); i >= 0 {
		return i
	}
	return len(d.Configs) - 1
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "laarsim:", err)
	os.Exit(1)
}

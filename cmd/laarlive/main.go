// Command laarlive deploys an application descriptor on the live goroutine
// runtime with synthetic pass-through operators, drives it with a
// trace-driven source feeder (replayed at a configurable wall-clock
// compression), optionally injects a replica crash mid-run, and prints the
// run statistics. It is the interactive counterpart of laarsim: real
// goroutines and channels instead of the deterministic simulator.
//
// Usage:
//
//	laarlive -desc app.json -ic 0.6 -duration 60 -scale 10 -crash
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"laar"
)

func main() {
	var (
		descPath  = flag.String("desc", "", "application descriptor JSON (required)")
		ic        = flag.Float64("ic", 0.6, "IC SLA target for the LAAR strategy")
		hosts     = flag.Int("hosts", 5, "number of deployment hosts")
		duration  = flag.Float64("duration", 60, "trace duration in simulated seconds")
		period    = flag.Float64("period", 30, "trace period; High active one third of each period")
		scale     = flag.Float64("scale", 10, "wall-clock compression (10 = run 10x faster than real time)")
		crash     = flag.Bool("crash", false, "crash a primary replica mid-run to demonstrate failover")
		supervise = flag.Bool("supervise", false, "enable the replica supervisor: crashed replicas restart automatically with backoff")
		deadline  = flag.Duration("deadline", 10*time.Second, "solver deadline")
		ctrls     = flag.Int("controllers", 1, "replicated HAController instances")
		crashCtrl = flag.Bool("crash-controller", false, "crash the lease-holding controller mid-run to demonstrate control-plane failover (needs -controllers > 1)")
	)
	flag.Parse()
	if *descPath == "" {
		fatal(fmt.Errorf("missing -desc"))
	}
	d, err := laar.LoadDescriptorFile(*descPath)
	if err != nil {
		fatal(err)
	}
	rates := laar.NewRates(d)
	asg, err := laar.PlaceLPT(rates, laar.DefaultReplication, *hosts)
	if err != nil {
		fatal(err)
	}
	res, err := laar.Solve(rates, asg, laar.SolveOptions{
		ICMin:    *ic,
		Deadline: *deadline,
		Workers:  runtime.NumCPU(),
	})
	if err != nil {
		fatal(err)
	}
	if res.Strategy == nil {
		fatal(fmt.Errorf("no strategy for IC %v: %v", *ic, res.Outcome))
	}
	fmt.Fprintf(os.Stderr, "strategy: %v, guaranteed IC %.3f\n", res.Outcome, res.IC)

	rt, err := laar.NewLiveRuntime(d, asg, res.Strategy, func(laar.ComponentID, int) laar.Operator {
		return laar.OperatorFunc(func(t laar.Tuple) []any { return []any{t.Data} })
	}, laar.LiveConfig{MonitorInterval: 50 * time.Millisecond, QueueLen: 4096, Supervise: *supervise, Controllers: *ctrls})
	if err != nil {
		fatal(err)
	}
	var delivered atomic.Int64
	rt.OnSink(func(laar.ComponentID, laar.Tuple) { delivered.Add(1) })
	if err := rt.Start(); err != nil {
		fatal(err)
	}

	lowCfg, highCfg := 0, len(d.Configs)-1
	tr, err := laar.AlternatingTrace(*duration, *period, 1.0/3.0, lowCfg, highCfg)
	if err != nil {
		fatal(err)
	}
	driver, err := laar.NewLiveDriver(rt, d, tr, *scale)
	if err != nil {
		fatal(err)
	}

	if *crash {
		pe := d.App.PEs()[0]
		go func() {
			time.Sleep(time.Duration(*duration / *scale * 0.4 * float64(time.Second)))
			fmt.Fprintf(os.Stderr, "crashing %s replica 0...\n", d.App.Component(pe).Name)
			if err := rt.KillReplica(pe, 0); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}
	if *crashCtrl {
		if *ctrls < 2 {
			fatal(fmt.Errorf("-crash-controller needs -controllers > 1 (a standby must exist to take the lease)"))
		}
		go func() {
			time.Sleep(time.Duration(*duration / *scale * 0.4 * float64(time.Second)))
			leader, epoch := rt.Leader()
			fmt.Fprintf(os.Stderr, "crashing lease-holding controller %d (epoch %d)...\n", leader, epoch)
			if err := rt.KillController(leader); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			time.Sleep(time.Duration(*duration / *scale * 0.3 * float64(time.Second)))
			fmt.Fprintf(os.Stderr, "recovering controller %d...\n", leader)
			if err := rt.RecoverController(leader); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	pushed, err := driver.Run(context.Background())
	if err != nil {
		fatal(err)
	}
	time.Sleep(200 * time.Millisecond) // drain the pipeline tail
	replicaStats := rt.Stats()
	ctrlStats := rt.ControllerStats()
	leases := rt.LeaseHistory()
	stats, err := rt.Stop()
	if err != nil {
		fatal(err)
	}
	var total int64
	for src, n := range pushed {
		fmt.Printf("source %-12s pushed %d tuples\n", d.App.Component(src).Name, n)
		total += n
	}
	fmt.Printf("sink deliveries   %d\n", stats.SinkDelivered)
	fmt.Printf("dropped           %d\n", stats.Dropped)
	fmt.Printf("net dropped       %d\n", stats.NetDropped)
	fmt.Printf("reconfigurations  %d\n", stats.ConfigSwitches)
	for pe, byRep := range stats.Processed {
		fmt.Printf("PE %-2d replicas processed: %v\n", pe, byRep)
	}
	if *supervise {
		for _, rs := range replicaStats {
			if rs.Restarts == 0 && rs.Alive {
				continue
			}
			fmt.Printf("replica (%d,%d): alive=%v restarts=%d backoff=%v pending=%v\n",
				rs.PE, rs.Replica, rs.Alive, rs.Restarts, rs.Backoff, rs.RestartPending)
		}
	}
	if *ctrls > 1 {
		fmt.Printf("lease grants      %d\n", len(leases))
		for _, cs := range ctrlStats {
			fmt.Printf("controller %d: alive=%v leader=%v epoch=%d commands sent=%d acked=%d retried=%d stale-rejected=%d\n",
				cs.ID, cs.Alive, cs.Leader, cs.Epoch, cs.CommandsSent, cs.CommandsAcked, cs.CommandsRetried, cs.StaleRejected)
		}
	}
	_ = total
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "laarlive:", err)
	os.Exit(1)
}

// Command laargen generates a synthetic stream processing application with
// the paper's corpus characteristics (Section 5.2) and writes its
// application descriptor as JSON.
//
// Usage:
//
//	laargen -pes 24 -hosts 5 -seed 1 -o app.json
package main

import (
	"flag"
	"fmt"
	"os"

	"laar"
)

func main() {
	var (
		pes    = flag.Int("pes", 24, "number of processing elements")
		srcs   = flag.Int("sources", 1, "number of external sources (2^s input configurations)")
		hosts  = flag.Int("hosts", 5, "number of deployment hosts")
		seed   = flag.Int64("seed", 1, "generation seed")
		degree = flag.Float64("degree", 2.25, "target average PE out-degree")
		out    = flag.String("o", "", "output file (default stdout)")
		format = flag.String("format", "json", "output format: json | spl")
	)
	flag.Parse()

	gen, err := laar.GenerateApp(laar.GenParams{
		NumPEs:       *pes,
		NumSources:   *srcs,
		NumHosts:     *hosts,
		Seed:         *seed,
		AvgOutDegree: *degree,
	})
	if err != nil {
		fatal(err)
	}
	var data []byte
	switch *format {
	case "json":
		var err error
		data, err = laar.MarshalDescriptor(gen.Desc)
		if err != nil {
			fatal(err)
		}
	case "spl":
		data = []byte(laar.FormatSPL(gen.Desc))
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}
	if *out == "" {
		fmt.Println(string(data))
		return
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d PEs, %d hosts, Low=%.2f t/s, High=%.2f t/s\n",
		*out, gen.Desc.App.NumPEs(), *hosts,
		gen.Desc.Configs[gen.LowCfg].Rates[0], gen.Desc.Configs[gen.HighCfg].Rates[0])
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "laargen:", err)
	os.Exit(1)
}

// Command laarchaos runs seeded chaos scenarios against the LAAR runtimes
// and checks the invariant registry after every run. Each run is a pure
// function of its seed, so any violation this command reports reproduces
// from the printed seed and class alone — the sweep is fanned out across a
// worker pool, and the results are identical for every -parallel setting.
//
// Usage:
//
//	laarchaos -runs 25                       # 25 seeds across every class
//	laarchaos -seed 42 -scenario partition   # reproduce one run
//	laarchaos -runs 5 -diff                  # engine ↔ live differential mode
//	laarchaos -runs 5 -supervised            # supervised-recovery mode
//	laarchaos -runs 3 -controller            # replicated-control-plane mode
//	laarchaos -runs 100 -model               # direct control-plane model check
//	laarchaos -runs 100 -parallel 4          # bound the worker pool
//
// Beyond seeded sampling, -exhaustive explores EVERY interleaving of
// control-plane events over a small deployment of the extracted
// controlplane machines, to a depth bound, with canonical-state pruning —
// and shrinks any violation to a 1-minimal replayable schedule:
//
//	laarchaos -exhaustive -instances 2 -depth 8    # bounded exhaustive check
//	laarchaos -exhaustive -inject claim-adopts-seen -repro ce.json
//	laarchaos -runs 100 -model -shrink -repro min.json
//	laarchaos -replay ce.json                      # re-run a saved artifact
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"laar"
	"laar/internal/pprofutil"
)

func main() {
	var (
		seed       = flag.Int64("seed", 1, "base seed; run i uses seed+i")
		runs       = flag.Int("runs", 1, "seeds to run per scenario class")
		scenario   = flag.String("scenario", "all", "schedule class: host-crash | correlated-crash | replica-churn | load-spike | glitch-burst | mixed | partition | gray-slow | ctrl-crash | ctrl-partition | ctrl-spike | domain-crash | checkpoint-restore | rate-shift-reconfig | reconfig-churn | all")
		diff       = flag.Bool("diff", false, "differential mode: run each scenario on the engine and the live runtime and compare sink counts")
		supervised = flag.Bool("supervised", false, "supervised-recovery mode: replay faults against the supervised live runtime, withholding scheduled recoveries")
		controller = flag.Bool("controller", false, "control-plane mode: replay controller crashes, blackouts and controller↔controller cuts against the replicated live control plane")
		model      = flag.Bool("model", false, "model-check mode: replay control-plane faults directly against the extracted controlplane machines, no engine or live runtime")
		parallel   = flag.Int("parallel", runtime.NumCPU(), "worker pool size for the sweep (invariant results are identical for every setting)")
		duration   = flag.Float64("duration", 0, "trace duration in seconds (0 = scenario default)")
		pes        = flag.Int("pes", 0, "synthetic application size in PEs (0 = default)")
		hosts      = flag.Int("hosts", 0, "deployment hosts (0 = default)")
		ctrls      = flag.Int("controllers", 0, "replicated HAController instances (0 = scenario default: 3 for ctrl-* classes, 1 otherwise)")
		shards     = flag.Int("shards", 0, "engine shard count for invariant and diff runs; results are bit-identical at every setting (0 = serial)")
		icTarget   = flag.Float64("ic-target", 0, "ICGreedy strategy target (0 = default)")
		verbose    = flag.Bool("v", false, "print every run, not only violations")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")

		exhaustive = flag.Bool("exhaustive", false, "bounded exhaustive mode: explore every control-plane event interleaving to -depth with canonical-state pruning")
		depth      = flag.Int("depth", 8, "exhaustive mode: schedule length bound in events")
		instances  = flag.Int("instances", 2, "exhaustive mode: controller instances in the explored world")
		statesMax  = flag.Int("states-max", 0, "exhaustive mode: visited-state cap (0 = unlimited); hitting it reports a truncated search")
		inject     = flag.String("inject", "none", "exhaustive mode: deliberate kernel bug to inject: none | crash-keeps-pending | claim-adopts-seen | dup-reapplies | deactivate-first")
		migration  = flag.Bool("migration", false, "exhaustive mode: model staged primary-swap migrations (two-wave flips advanced by flip-step events)")
		shrink     = flag.Bool("shrink", false, "model mode: ddmin-shrink the first failing schedule to a minimal reproducer")
		reproOut   = flag.String("repro", "", "write the (shrunk) violating schedule to this JSON artifact")
		replayPath = flag.String("replay", "", "replay a repro artifact written by -repro and exit")
	)
	flag.Parse()
	if *replayPath != "" {
		replayArtifact(*replayPath)
		return
	}
	modeFlags := 0
	for _, on := range []bool{*diff, *supervised, *controller, *model, *exhaustive} {
		if on {
			modeFlags++
		}
	}
	if modeFlags > 1 {
		fatal(fmt.Errorf("-diff, -supervised, -controller, -model and -exhaustive are mutually exclusive"))
	}
	if *exhaustive {
		runExhaustive(*instances, *depth, *statesMax, *migration, *inject, *reproOut)
		return
	}
	if *shrink && !*model {
		fatal(fmt.Errorf("-shrink requires -model (exhaustive counterexamples are shrunk automatically)"))
	}
	mode := laar.ChaosModeInvariants
	switch {
	case *diff:
		mode = laar.ChaosModeDiff
	case *supervised:
		mode = laar.ChaosModeSupervised
	case *controller:
		mode = laar.ChaosModeController
	case *model:
		mode = laar.ChaosModeModel
	}

	stopProfiles, err := pprofutil.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}

	classes := laar.ChaosClasses()
	if *scenario != "all" {
		c, err := laar.ParseChaosClass(*scenario)
		if err != nil {
			fatal(err)
		}
		classes = []laar.ChaosClass{c}
	}

	var scs []laar.ChaosScenario
	for _, class := range classes {
		for i := 0; i < *runs; i++ {
			scs = append(scs, laar.ChaosScenario{
				Seed:        *seed + int64(i),
				Class:       class,
				Duration:    *duration,
				NumPEs:      *pes,
				NumHosts:    *hosts,
				ICTarget:    *icTarget,
				Controllers: *ctrls,
				Shards:      *shards,
			})
		}
	}

	failed := 0
	artifactSaved := false
	for _, run := range laar.SweepChaos(scs, *parallel, mode) {
		bad := report(run, *verbose)
		failed += bad
		if bad > 0 && run.Model != nil && !artifactSaved && (*shrink || *reproOut != "") {
			shrinkModelFailure(run, *shrink, *reproOut)
			artifactSaved = true
		}
	}
	fmt.Printf("%d %s runs, %d failed\n", len(scs), mode, failed)
	if err := stopProfiles(); err != nil {
		fatal(err)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// report prints one sweep outcome. Returns 1 when the run failed, else 0.
func report(run laar.ChaosSweepRun, verbose bool) int {
	sc := run.Scenario
	if run.Err != nil {
		fatal(fmt.Errorf("seed %d %s: %w", sc.Seed, sc.Class, run.Err))
	}
	if run.Diff != nil {
		if err := run.Diff.Err(); err != nil {
			fmt.Printf("seed %-4d %-16s DIVERGED %v\n", sc.Seed, sc.Class, err)
			return 1
		}
		if verbose {
			fmt.Printf("seed %-4d %-16s ok: engine %.0f vs live %.0f (tolerance %.0f)\n",
				sc.Seed, sc.Class, run.Diff.EngineSink, run.Diff.LiveSink, run.Diff.Tolerance)
		}
		return 0
	}
	if run.Supervised != nil {
		if err := run.Supervised.Err(); err != nil {
			fmt.Printf("seed %-4d %-16s NOT-RECOVERED %v\n", sc.Seed, sc.Class, err)
			return 1
		}
		if verbose {
			fmt.Printf("seed %-4d %-16s ok: %d kills, %d supervisor restarts\n",
				sc.Seed, sc.Class, run.Supervised.Kills, run.Supervised.Restarts)
		}
		return 0
	}
	if run.Controller != nil {
		if err := run.Controller.Err(); err != nil {
			fmt.Printf("seed %-4d %-16s CONTROL-PLANE %v\n", sc.Seed, sc.Class, err)
			return 1
		}
		if verbose {
			fmt.Printf("seed %-4d %-16s ok: leader %d epoch %d after %d lease grants, fail-safe observed=%v\n",
				sc.Seed, sc.Class, run.Controller.Leader, run.Controller.Epoch,
				len(run.Controller.Leases), run.Controller.FailSafeObserved)
		}
		return 0
	}
	if run.Model != nil {
		if err := run.Model.Err(); err != nil {
			fmt.Printf("seed %-4d %-16s MODEL %v\n", sc.Seed, sc.Class, err)
			return 1
		}
		if verbose {
			fmt.Printf("seed %-4d %-16s ok: leader %d epoch %d after %d claims (%d re-claims), fail-safe observed=%v\n",
				sc.Seed, sc.Class, run.Model.Leader, run.Model.Epoch,
				len(run.Model.Epochs), run.Model.Reclaims, run.Model.FailSafeObserved)
		}
		return 0
	}
	if len(run.Violations) == 0 {
		if verbose {
			fmt.Printf("seed %-4d %-16s ok: IC %.4f ≥ bound %.4f, %s\n",
				sc.Seed, sc.Class, run.Result.MeasuredIC, run.Result.BoundIC, run.Result.Schedule.Describe())
		}
		return 0
	}
	for _, v := range run.Violations {
		fmt.Printf("seed %-4d %-16s VIOLATION %v (%s)\n", sc.Seed, sc.Class, v, run.Result.Schedule.Describe())
	}
	return 1
}

// runExhaustive runs the bounded exhaustive explorer, shrinks any
// counterexample to a 1-minimal schedule, and optionally writes it as a
// replayable artifact. A violation (or a truncated search) exits nonzero.
func runExhaustive(instances, depth, statesMax int, migration bool, inject, reproOut string) {
	fault, err := laar.ParseMCheckFault(inject)
	if err != nil {
		fatal(err)
	}
	opt := laar.DefaultMCheckOptions()
	opt.Instances = instances
	opt.Depth = depth
	opt.MaxStates = statesMax
	opt.Migration = migration
	opt.Fault = fault
	res, err := laar.ExhaustiveCheck(opt)
	if err != nil {
		fatal(err)
	}
	status := "exhaustive to depth"
	if res.Truncated {
		status = "TRUNCATED at states cap, depth"
	}
	fmt.Printf("exhaustive: instances=%d pes=%d k=%d fault=%v: explored=%d unique=%d pruned=%d — %s %d\n",
		opt.Instances, opt.PEs, opt.K, opt.Fault,
		res.Explored, res.Unique, res.Pruned, status, res.Deepest)
	if res.Counterexample == nil {
		fmt.Printf("no invariant violation in any reachable state\n")
		if res.Truncated {
			os.Exit(1)
		}
		return
	}
	ce := res.Counterexample
	fmt.Printf("COUNTEREXAMPLE %s", ce)
	sopt, sevents := laar.ShrinkMCheck(opt, ce.Events, ce.Invariant)
	min := &laar.MCheckCounterexample{
		Options: sopt, Events: sevents,
		Invariant: ce.Invariant, Detail: ce.Detail,
	}
	fmt.Printf("shrunk %d → %d events (instances=%d pes=%d k=%d ttl=%d failsafe=%d):\n",
		len(ce.Events), len(sevents), sopt.Instances, sopt.PEs, sopt.K, sopt.TTL, sopt.FailSafe)
	for i, e := range sevents {
		fmt.Printf("  %2d. %s\n", i+1, e)
	}
	if reproOut != "" {
		if err := laar.SaveMCheckRepro(reproOut, laar.MCheckReproFromCounterexample(min)); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote minimal repro artifact to %s\n", reproOut)
	}
	os.Exit(1)
}

// shrinkModelFailure minimises the first failing model schedule of a sweep
// and optionally writes the result as a replayable artifact.
func shrinkModelFailure(run laar.ChaosSweepRun, shrink bool, reproOut string) {
	sc, sched := run.Scenario, run.Model.Schedule
	detail := run.Model.Err().Error()
	if shrink {
		shrunk, smr, err := laar.ShrinkModelChaos(sc, sched)
		if err != nil {
			fmt.Printf("shrink failed: %v\n", err)
		} else {
			fmt.Printf("shrunk schedule %d → %d failure events, %d → %d ctrl cuts, still: %v\n",
				len(sched.Events), len(shrunk.Events), len(sched.CtrlCuts), len(shrunk.CtrlCuts), smr.Err())
			sched, detail = shrunk, smr.Err().Error()
		}
	}
	if reproOut != "" {
		if err := laar.SaveMCheckRepro(reproOut, laar.MCheckReproFromModel(sc, sched, detail)); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote repro artifact to %s\n", reproOut)
	}
}

// replayArtifact re-runs a saved repro artifact: exits 1 while the
// recorded violation still reproduces, 0 once it no longer does.
func replayArtifact(path string) {
	r, err := laar.LoadMCheckRepro(path)
	if err != nil {
		fatal(err)
	}
	verdict, err := laar.ReplayMCheckRepro(r)
	if err != nil {
		fmt.Printf("%v\n", err)
		return
	}
	fmt.Printf("%s\n", verdict)
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "laarchaos:", err)
	os.Exit(1)
}

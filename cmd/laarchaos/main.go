// Command laarchaos runs seeded chaos scenarios against the LAAR runtimes
// and checks the invariant registry after every run. Each run is a pure
// function of its seed, so any violation this command reports reproduces
// from the printed seed and class alone — the sweep is fanned out across a
// worker pool, and the results are identical for every -parallel setting.
//
// Usage:
//
//	laarchaos -runs 25                       # 25 seeds across every class
//	laarchaos -seed 42 -scenario partition   # reproduce one run
//	laarchaos -runs 5 -diff                  # engine ↔ live differential mode
//	laarchaos -runs 5 -supervised            # supervised-recovery mode
//	laarchaos -runs 3 -controller            # replicated-control-plane mode
//	laarchaos -runs 100 -model               # direct control-plane model check
//	laarchaos -runs 100 -parallel 4          # bound the worker pool
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"laar"
	"laar/internal/pprofutil"
)

func main() {
	var (
		seed       = flag.Int64("seed", 1, "base seed; run i uses seed+i")
		runs       = flag.Int("runs", 1, "seeds to run per scenario class")
		scenario   = flag.String("scenario", "all", "schedule class: host-crash | correlated-crash | replica-churn | load-spike | glitch-burst | mixed | partition | gray-slow | ctrl-crash | ctrl-partition | ctrl-spike | all")
		diff       = flag.Bool("diff", false, "differential mode: run each scenario on the engine and the live runtime and compare sink counts")
		supervised = flag.Bool("supervised", false, "supervised-recovery mode: replay faults against the supervised live runtime, withholding scheduled recoveries")
		controller = flag.Bool("controller", false, "control-plane mode: replay controller crashes, blackouts and controller↔controller cuts against the replicated live control plane")
		model      = flag.Bool("model", false, "model-check mode: replay control-plane faults directly against the extracted controlplane machines, no engine or live runtime")
		parallel   = flag.Int("parallel", runtime.NumCPU(), "worker pool size for the sweep (invariant results are identical for every setting)")
		duration   = flag.Float64("duration", 0, "trace duration in seconds (0 = scenario default)")
		pes        = flag.Int("pes", 0, "synthetic application size in PEs (0 = default)")
		hosts      = flag.Int("hosts", 0, "deployment hosts (0 = default)")
		ctrls      = flag.Int("controllers", 0, "replicated HAController instances (0 = scenario default: 3 for ctrl-* classes, 1 otherwise)")
		icTarget   = flag.Float64("ic-target", 0, "ICGreedy strategy target (0 = default)")
		verbose    = flag.Bool("v", false, "print every run, not only violations")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()
	modeFlags := 0
	for _, on := range []bool{*diff, *supervised, *controller, *model} {
		if on {
			modeFlags++
		}
	}
	if modeFlags > 1 {
		fatal(fmt.Errorf("-diff, -supervised, -controller and -model are mutually exclusive"))
	}
	mode := laar.ChaosModeInvariants
	switch {
	case *diff:
		mode = laar.ChaosModeDiff
	case *supervised:
		mode = laar.ChaosModeSupervised
	case *controller:
		mode = laar.ChaosModeController
	case *model:
		mode = laar.ChaosModeModel
	}

	stopProfiles, err := pprofutil.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}

	classes := laar.ChaosClasses()
	if *scenario != "all" {
		c, err := laar.ParseChaosClass(*scenario)
		if err != nil {
			fatal(err)
		}
		classes = []laar.ChaosClass{c}
	}

	var scs []laar.ChaosScenario
	for _, class := range classes {
		for i := 0; i < *runs; i++ {
			scs = append(scs, laar.ChaosScenario{
				Seed:        *seed + int64(i),
				Class:       class,
				Duration:    *duration,
				NumPEs:      *pes,
				NumHosts:    *hosts,
				ICTarget:    *icTarget,
				Controllers: *ctrls,
			})
		}
	}

	failed := 0
	for _, run := range laar.SweepChaos(scs, *parallel, mode) {
		failed += report(run, *verbose)
	}
	fmt.Printf("%d %s runs, %d failed\n", len(scs), mode, failed)
	if err := stopProfiles(); err != nil {
		fatal(err)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// report prints one sweep outcome. Returns 1 when the run failed, else 0.
func report(run laar.ChaosSweepRun, verbose bool) int {
	sc := run.Scenario
	if run.Err != nil {
		fatal(fmt.Errorf("seed %d %s: %w", sc.Seed, sc.Class, run.Err))
	}
	if run.Diff != nil {
		if err := run.Diff.Err(); err != nil {
			fmt.Printf("seed %-4d %-16s DIVERGED %v\n", sc.Seed, sc.Class, err)
			return 1
		}
		if verbose {
			fmt.Printf("seed %-4d %-16s ok: engine %.0f vs live %.0f (tolerance %.0f)\n",
				sc.Seed, sc.Class, run.Diff.EngineSink, run.Diff.LiveSink, run.Diff.Tolerance)
		}
		return 0
	}
	if run.Supervised != nil {
		if err := run.Supervised.Err(); err != nil {
			fmt.Printf("seed %-4d %-16s NOT-RECOVERED %v\n", sc.Seed, sc.Class, err)
			return 1
		}
		if verbose {
			fmt.Printf("seed %-4d %-16s ok: %d kills, %d supervisor restarts\n",
				sc.Seed, sc.Class, run.Supervised.Kills, run.Supervised.Restarts)
		}
		return 0
	}
	if run.Controller != nil {
		if err := run.Controller.Err(); err != nil {
			fmt.Printf("seed %-4d %-16s CONTROL-PLANE %v\n", sc.Seed, sc.Class, err)
			return 1
		}
		if verbose {
			fmt.Printf("seed %-4d %-16s ok: leader %d epoch %d after %d lease grants, fail-safe observed=%v\n",
				sc.Seed, sc.Class, run.Controller.Leader, run.Controller.Epoch,
				len(run.Controller.Leases), run.Controller.FailSafeObserved)
		}
		return 0
	}
	if run.Model != nil {
		if err := run.Model.Err(); err != nil {
			fmt.Printf("seed %-4d %-16s MODEL %v\n", sc.Seed, sc.Class, err)
			return 1
		}
		if verbose {
			fmt.Printf("seed %-4d %-16s ok: leader %d epoch %d after %d claims (%d re-claims), fail-safe observed=%v\n",
				sc.Seed, sc.Class, run.Model.Leader, run.Model.Epoch,
				len(run.Model.Epochs), run.Model.Reclaims, run.Model.FailSafeObserved)
		}
		return 0
	}
	if len(run.Violations) == 0 {
		if verbose {
			fmt.Printf("seed %-4d %-16s ok: IC %.4f ≥ bound %.4f, %s\n",
				sc.Seed, sc.Class, run.Result.MeasuredIC, run.Result.BoundIC, run.Result.Schedule.Describe())
		}
		return 0
	}
	for _, v := range run.Violations {
		fmt.Printf("seed %-4d %-16s VIOLATION %v (%s)\n", sc.Seed, sc.Class, v, run.Result.Schedule.Describe())
	}
	return 1
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "laarchaos:", err)
	os.Exit(1)
}

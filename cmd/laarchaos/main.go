// Command laarchaos runs seeded chaos scenarios against the LAAR runtimes
// and checks the invariant registry after every run. Each run is a pure
// function of its seed, so any violation this command reports reproduces
// from the printed seed and class alone.
//
// Usage:
//
//	laarchaos -runs 25                       # 25 seeds across every class
//	laarchaos -seed 42 -scenario host-crash  # reproduce one run
//	laarchaos -runs 5 -diff                  # engine ↔ live differential mode
package main

import (
	"flag"
	"fmt"
	"os"

	"laar"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "base seed; run i uses seed+i")
		runs     = flag.Int("runs", 1, "seeds to run per scenario class")
		scenario = flag.String("scenario", "all", "schedule class: host-crash | correlated-crash | replica-churn | load-spike | glitch-burst | mixed | all")
		diff     = flag.Bool("diff", false, "differential mode: run each scenario on the engine and the live runtime and compare sink counts")
		duration = flag.Float64("duration", 0, "trace duration in seconds (0 = scenario default)")
		pes      = flag.Int("pes", 0, "synthetic application size in PEs (0 = default)")
		hosts    = flag.Int("hosts", 0, "deployment hosts (0 = default)")
		icTarget = flag.Float64("ic-target", 0, "ICGreedy strategy target (0 = default)")
		verbose  = flag.Bool("v", false, "print every run, not only violations")
	)
	flag.Parse()

	classes := laar.ChaosClasses()
	if *scenario != "all" {
		c, err := laar.ParseChaosClass(*scenario)
		if err != nil {
			fatal(err)
		}
		classes = []laar.ChaosClass{c}
	}

	total, failed := 0, 0
	for _, class := range classes {
		for i := 0; i < *runs; i++ {
			sc := laar.ChaosScenario{
				Seed:     *seed + int64(i),
				Class:    class,
				Duration: *duration,
				NumPEs:   *pes,
				NumHosts: *hosts,
				ICTarget: *icTarget,
			}
			total++
			if *diff {
				failed += runDiff(sc, *verbose)
			} else {
				failed += runEngine(sc, *verbose)
			}
		}
	}
	mode := "invariant"
	if *diff {
		mode = "differential"
	}
	fmt.Printf("%d %s runs, %d failed\n", total, mode, failed)
	if failed > 0 {
		os.Exit(1)
	}
}

// runEngine executes one engine scenario and prints violations. Returns 1
// when the run violated an invariant, else 0.
func runEngine(sc laar.ChaosScenario, verbose bool) int {
	res, violations, err := laar.RunChaos(sc)
	if err != nil {
		fatal(fmt.Errorf("seed %d %s: %w", sc.Seed, sc.Class, err))
	}
	if len(violations) == 0 {
		if verbose {
			fmt.Printf("seed %-4d %-16s ok: IC %.4f ≥ bound %.4f, %s\n",
				sc.Seed, sc.Class, res.MeasuredIC, res.BoundIC, res.Schedule.Describe())
		}
		return 0
	}
	for _, v := range violations {
		fmt.Printf("seed %-4d %-16s VIOLATION %v (%s)\n", sc.Seed, sc.Class, v, res.Schedule.Describe())
	}
	return 1
}

// runDiff executes one differential scenario. Returns 1 on disagreement.
func runDiff(sc laar.ChaosScenario, verbose bool) int {
	dr, err := laar.DiffChaos(sc)
	if err != nil {
		fatal(fmt.Errorf("seed %d %s: %w", sc.Seed, sc.Class, err))
	}
	if err := dr.Err(); err != nil {
		fmt.Printf("seed %-4d %-16s DIVERGED %v\n", sc.Seed, sc.Class, err)
		return 1
	}
	if verbose {
		fmt.Printf("seed %-4d %-16s ok: engine %.0f vs live %.0f (tolerance %.0f)\n",
			sc.Seed, sc.Class, dr.EngineSink, dr.LiveSink, dr.Tolerance)
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "laarchaos:", err)
	os.Exit(1)
}

// Command laarcluster runs a LAAR deployment as separate OS processes
// talking over real TCP: one process per HAController, per host (its
// replica slots), and one gateway feeding tuples in. Every inter-node
// link is relayed through a fault proxy, so a chaos schedule can kill
// and restart processes, sever and heal links, and inject loss or delay
// while the run-level invariant registry judges the outcome.
//
// Usage:
//
//	laarcluster -hosts 4 -controllers 3              # default chaos schedule
//	laarcluster -chaos "500ms kill ctrl0; 2s restart ctrl0"
//	laarcluster -chaos "" -duration 3s               # fault-free soak
//	laarcluster -hosts 2 -controllers 1 -duration 2s -poll 100ms -v
//
// Chaos schedules are ";"-separated "<offset> <verb> <args>" events:
//
//	500ms kill ctrl0            kill a node process (SIGKILL)
//	2s restart ctrl0            respawn it (new incarnation, new port)
//	800ms cut host0 ctrl1       sever one link (both directions)
//	1600ms heal host0 ctrl1     restore it
//	1s loss 0.3                 global loss on data frames
//	1s loss host0 host1 0.5     per-link loss override
//	1s delay gw host0 5ms       per-link delay override
//	900ms target 0              switch the activation target config
//
// The same binary is its own child: the supervisor re-execs it with
// -node, feeding the node spec on stdin.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"laar/internal/cluster"
)

func main() {
	var (
		node     = flag.Bool("node", false, "child mode: run one cluster node from a spec on stdin (used by the supervisor, not by hand)")
		hosts    = flag.Int("hosts", 2, "host processes")
		ctrls    = flag.Int("controllers", 2, "HAController processes")
		pes      = flag.Int("pes", 2, "pipeline stages (PEs)")
		replicas = flag.Int("replicas", 2, "replicas per PE")
		duration = flag.Duration("duration", 4*time.Second, "total run wall time (the schedule must fit inside it)")
		poll     = flag.Duration("poll", 200*time.Millisecond, "stats poll interval")
		chaos    = flag.String("chaos", cluster.DefaultScheduleText, "chaos schedule; empty runs fault-free")
		tick     = flag.Int("tick", 25, "node tick interval in ms")
		ttl      = flag.Int("ttl", 0, "lease TTL in ms (0 = 8×tick)")
		seed     = flag.Int64("seed", 1, "fault fabric seed (loss draws)")
		verbose  = flag.Bool("v", false, "forward child output and supervisor progress")
	)
	flag.Parse()

	if *node {
		if err := cluster.RunChild(os.Stdin, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	sched, err := cluster.ParseSchedule(*chaos)
	if err != nil {
		fatal(err)
	}
	if n := len(sched); n > 0 && sched[n-1].At >= *duration {
		fatal(fmt.Errorf("schedule's last event at %v does not fit inside -duration %v", sched[n-1].At, *duration))
	}
	self, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	sup := &cluster.Supervisor{
		Top: cluster.Topology{
			Hosts:       *hosts,
			Controllers: *ctrls,
			PEs:         *pes,
			Replicas:    *replicas,
		},
		TickMs:     *tick,
		LeaseTTLMs: *ttl,
		Command:    []string{self, "-node"},
		Seed:       *seed,
	}
	if *verbose {
		sup.Logf = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}

	if err := sup.Start(); err != nil {
		fatal(err)
	}
	report, err := sup.Run(sched, *duration, *poll)
	sup.Shutdown()
	if err != nil {
		fatal(err)
	}

	violations := cluster.CheckAll(report)
	fmt.Printf("laarcluster: %d ctrls, %d hosts, %d PEs × %d replicas; %d chaos events over %v, %d polls\n",
		*ctrls, *hosts, *pes, *replicas, len(sched), *duration, len(report.Polls))
	if final := len(report.Polls) - 1; final >= 0 {
		p := report.Polls[final]
		for _, c := range p.Ctrls {
			if c != nil && c.Leading {
				fmt.Printf("laarcluster: final leader ctrl%d epoch %d, cfg %d, %d pending\n", c.ID, c.Epoch, c.Cfg, c.Pending)
			}
		}
		if p.Gateway != nil {
			fmt.Printf("laarcluster: gateway sent %d tuples\n", p.Gateway.Sent)
		}
	}
	if len(violations) == 0 {
		fmt.Println("laarcluster: all invariants hold")
		return
	}
	for _, v := range violations {
		fmt.Printf("laarcluster: VIOLATION %v\n", v)
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "laarcluster:", err)
	os.Exit(1)
}

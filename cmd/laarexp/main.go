// Command laarexp regenerates the paper's evaluation figures (Section 5)
// on the simulated DSPS: the pipeline adaptation time series (Figure 3),
// the FT-Search outcome, first-solution and pruning studies (Figures 4–6),
// and the six-variant runtime comparison (Figures 9–12).
//
// Usage:
//
//	laarexp -experiment all
//	laarexp -experiment fig9 -apps 100 -pes 24 -hosts 5
//	laarexp -experiment fig4 -solver-apps 600 -deadline 10s
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"laar/internal/appgen"
	"laar/internal/engine"
	"laar/internal/experiments"
	"laar/internal/pprofutil"
)

func main() {
	var (
		which      = flag.String("experiment", "all", "fig3|fig4|fig5|fig6|fig9|fig10|fig11|fig12|failmodels|latency|all")
		apps       = flag.Int("apps", 20, "runtime corpus size (the paper uses 100)")
		pes        = flag.Int("pes", 24, "PEs per application")
		hosts      = flag.Int("hosts", 5, "hosts per deployment")
		solverApps = flag.Int("solver-apps", 30, "solver corpus size (the paper uses 600)")
		deadline   = flag.Duration("deadline", 2*time.Second, "FT-Search deadline per run")
		workers    = flag.Int("workers", runtime.NumCPU(), "FT-Search workers")
		seed       = flag.Int64("seed", 42, "corpus seed")
		crashApps  = flag.Int("crash-apps", 0, "apps in the host-crash subset (0 = 40% of corpus, as in the paper)")
		parallel   = flag.Int("parallel", runtime.NumCPU(), "worker pool size for the runtime matrix (results are identical for every setting)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	stopProfiles, err := pprofutil.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fatal(err)
		}
	}()

	want := func(name string) bool { return *which == "all" || *which == name }

	if want("fig3") {
		rep, err := experiments.Fig3()
		if err != nil {
			fatal(err)
		}
		fmt.Println(rep)
	}

	if want("fig4") || want("fig5") || want("fig6") {
		fmt.Fprintf(os.Stderr, "running FT-Search corpus (%d instances × 5 IC values)...\n", *solverApps)
		runs, err := experiments.RunSolverCorpus(experiments.SolverCorpusParams{
			NumApps:  *solverApps,
			Deadline: *deadline,
			Workers:  *workers,
			Seed:     *seed,
		})
		if err != nil {
			fatal(err)
		}
		if want("fig4") {
			fmt.Println(experiments.Fig4(runs))
		}
		if want("fig5") {
			fmt.Println(experiments.Fig5(runs))
		}
		if want("fig6") {
			fmt.Println(experiments.Fig6(runs))
		}
	}

	if want("latency") {
		gen, err := appgen.Generate(appgen.Params{NumPEs: *pes / 2, NumHosts: *hosts, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		rep, err := experiments.LatencySweep(gen, 0.5,
			[]float64{math.Inf(1), 10, 3, 1, 0.3, 0.1, 0.03}, *deadline)
		if err != nil {
			fatal(err)
		}
		fmt.Println(rep)
	}

	if want("fig9") || want("fig10") || want("fig11") || want("fig12") || want("failmodels") {
		fmt.Fprintf(os.Stderr, "building runtime corpus (%d apps × %d PEs on %d hosts)...\n", *apps, *pes, *hosts)
		corpus, err := experiments.BuildCorpus(experiments.CorpusParams{
			NumApps:        *apps,
			NumPEs:         *pes,
			NumHosts:       *hosts,
			Seed:           *seed,
			SolverDeadline: *deadline,
			SolverWorkers:  *workers,
		})
		if err != nil {
			fatal(err)
		}
		nCrash := *crashApps
		if nCrash == 0 {
			nCrash = len(corpus) * 2 / 5 // the paper re-runs a 40-of-100 subset
			if nCrash == 0 {
				nCrash = len(corpus)
			}
		}
		fmt.Fprintf(os.Stderr, "running %d apps × 6 variants × scenarios (%d workers)...\n", len(corpus), *parallel)
		rr, err := experiments.RunAllWith(corpus, engine.Config{}, experiments.RunAllOptions{
			CrashApps:   nCrash,
			Parallelism: *parallel,
		})
		if err != nil {
			fatal(err)
		}
		if want("fig9") {
			fmt.Println(experiments.Fig9(rr))
		}
		if want("fig10") {
			fmt.Println(experiments.Fig10(corpus, rr))
		}
		if want("fig11") {
			fmt.Println(experiments.Fig11(rr))
		}
		if want("fig12") {
			fmt.Println(experiments.Fig12(rr))
		}
		if want("failmodels") {
			fmt.Println(experiments.FailureModels(corpus, rr))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "laarexp:", err)
	os.Exit(1)
}

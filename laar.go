// Package laar is a library implementation of LAAR — Load-Adaptive Active
// Replication for distributed stream processing systems (Bellavista,
// Corradi, Reale, Kotoulas: "Adaptive Fault-Tolerance for Dynamic Resource
// Provisioning in Distributed Stream Processing Systems", EDBT 2014).
//
// LAAR runs k replicas of every processing element (PE) of a stream
// application and dynamically deactivates redundant replicas during load
// spikes, trading fault-tolerance for capacity under an a-priori guarantee:
// the internal completeness (IC) metric — the fraction of tuple processing
// that survives worst-case failures — never falls below the SLA target.
//
// The package exposes the full pipeline of the paper:
//
//   - Describe an application: Builder, Descriptor, InputConfig.
//   - Place replicas on hosts: PlaceLPT, PlaceRoundRobin, RefinePlacement.
//   - Reason about strategies: IC, BIC, FIC, Cost, HostLoads, Overloaded
//     under a FailureModel (Pessimistic, NoFailure, Independent, ...).
//   - Optimise: Solve runs the FT-Search constraint solver and returns a
//     minimum-cost activation strategy meeting the IC constraint; baselines
//     StaticStrategy, NonReplicatedStrategy, GreedyStrategy mirror the
//     paper's SR, NR and GRD variants.
//   - Execute: NewSimulation runs the strategy on a simulated multi-host
//     DSPS with bounded queues, a Rate Monitor, an HAController and failure
//     injection (WorstCasePlan, HostCrashPlan); the live subpackage-backed
//     runtime (NewLiveRuntime) executes real operators on goroutines.
//   - Generate workloads: GenerateApp builds synthetic applications with
//     the paper's corpus characteristics; AlternatingTrace and RandomTrace
//     build input-rate schedules; BinRates discretises measured rates.
//
// See examples/quickstart for an end-to-end walkthrough.
package laar

import (
	"math/rand"
	"os"
	"strings"
	"time"

	"laar/internal/appgen"
	"laar/internal/chaos"
	"laar/internal/core"
	"laar/internal/engine"
	"laar/internal/ftsearch"
	"laar/internal/fusion"
	"laar/internal/live"
	"laar/internal/mcheck"
	"laar/internal/ops"
	"laar/internal/placement"
	"laar/internal/profile"
	"laar/internal/spl"
	"laar/internal/strategy"
	"laar/internal/trace"
)

// Application model (see internal/core).
type (
	// App is an immutable application graph of sources, PEs and sinks.
	App = core.App
	// Builder incrementally constructs an App.
	Builder = core.Builder
	// ComponentID identifies a component within its App.
	ComponentID = core.ComponentID
	// Component is one vertex of the application graph.
	Component = core.Component
	// Edge is a stream connection annotated with selectivity and cost.
	Edge = core.Edge
	// Kind discriminates sources, PEs and sinks.
	Kind = core.Kind
	// Descriptor is the application descriptor of the service model.
	Descriptor = core.Descriptor
	// InputConfig is one discrete input configuration with its probability.
	InputConfig = core.InputConfig
	// Rates caches the expected tuple rates Δ(x, c) of a descriptor.
	Rates = core.Rates
	// Strategy is a replica activation strategy s: P̃ × C → {0, 1}.
	Strategy = core.Strategy
	// Assignment is the replicated placement ϑ of replicas to hosts.
	Assignment = core.Assignment
	// FailureModel describes φ, the availability model behind IC.
	FailureModel = core.FailureModel
	// Pessimistic is the paper's worst-case failure model (Eq. 14).
	Pessimistic = core.Pessimistic
	// NoFailure is the best-case model (φ ≡ 1).
	NoFailure = core.NoFailure
	// Independent fails each replica independently with probability P.
	Independent = core.Independent
	// SingleSurvivor keeps one uniformly random replica alive.
	SingleSurvivor = core.SingleSurvivor
	// DomainMap nests hosts into racks and zones — the correlated fault
	// domains of the deployment.
	DomainMap = core.DomainMap
	// DomainLevel selects a fault-domain granularity (host, rack, zone).
	DomainLevel = core.DomainLevel
	// Correlated is the failure model that crashes a whole fault domain at
	// once, taking the worst case over every domain at a level.
	Correlated = core.Correlated
	// FTPlan assigns every (configuration, PE) pair a fault-tolerance mode:
	// active replication, passive checkpointing, or nothing.
	FTPlan = core.FTPlan
	// FTMode is one fault-tolerance mode of an FTPlan.
	FTMode = core.FTMode
	// CheckpointAware wraps a base FailureModel, substituting the
	// checkpoint availability for PEs an FTPlan marks FTCheckpoint.
	CheckpointAware = core.CheckpointAware
)

// Fault-domain levels.
const (
	LevelHost = core.LevelHost
	LevelRack = core.LevelRack
	LevelZone = core.LevelZone
)

// Fault-tolerance modes.
const (
	FTNone       = core.FTNone
	FTActive     = core.FTActive
	FTCheckpoint = core.FTCheckpoint
)

// Component kinds.
const (
	KindSource = core.KindSource
	KindPE     = core.KindPE
	KindSink   = core.KindSink
)

// DefaultReplication is the replication factor of the paper's evaluation
// (twofold replication).
const DefaultReplication = core.DefaultReplication

// NewBuilder returns a Builder for an application with the given name.
func NewBuilder(name string) *Builder { return core.NewBuilder(name) }

// NewRates precomputes the expected rates of a descriptor.
func NewRates(d *Descriptor) *Rates { return core.NewRates(d) }

// NewStrategy returns an all-inactive strategy of the given shape.
func NewStrategy(numConfigs, numPEs, k int) *Strategy {
	return core.NewStrategy(numConfigs, numPEs, k)
}

// NewFTPlan returns an all-FTNone fault-tolerance plan of the given shape.
func NewFTPlan(numConfigs, numPEs int) *FTPlan { return core.NewFTPlan(numConfigs, numPEs) }

// UniformDomains builds a regular host ⊂ rack ⊂ zone topology: hostsPerRack
// hosts per rack, racksPerZone racks per zone.
func UniformDomains(numHosts, hostsPerRack, racksPerZone int) *DomainMap {
	return core.UniformDomains(numHosts, hostsPerRack, racksPerZone)
}

// NewCorrelated builds the correlated failure model over the deployment's
// fault domains with per-level crash probabilities.
func NewCorrelated(dom *DomainMap, asg *Assignment, pHost, pRack, pZone float64) (Correlated, error) {
	return core.NewCorrelated(dom, asg, pHost, pRack, pZone)
}

// CheckpointPhi returns the availability of a checkpointed (passive-FT)
// operator: the expected fraction of tuples that survive a crash with mean
// time between failures mtbf, restore delay restoreDelay and checkpoint
// interval interval.
func CheckpointPhi(mtbf, restoreDelay, interval float64) float64 {
	return core.CheckpointPhi(mtbf, restoreDelay, interval)
}

// CrossConfigs builds the Cartesian product of per-source rate alternatives
// into a full input-configuration set.
func CrossConfigs(rates, probs [][]float64) ([]InputConfig, error) {
	return core.CrossConfigs(rates, probs)
}

// MarshalDescriptor serialises a descriptor to JSON; UnmarshalDescriptor
// parses and validates it.
func MarshalDescriptor(d *Descriptor) ([]byte, error) { return core.MarshalDescriptor(d) }

// UnmarshalDescriptor parses a descriptor from JSON.
func UnmarshalDescriptor(data []byte) (*Descriptor, error) { return core.UnmarshalDescriptor(data) }

// IC returns the internal completeness FIC/BIC of a strategy under a
// failure model (Eq. 8).
func IC(r *Rates, s *Strategy, m FailureModel) float64 { return core.IC(r, s, m) }

// BIC returns the best-case internal completeness (Eq. 5).
func BIC(r *Rates) float64 { return core.BIC(r) }

// FIC returns the failure internal completeness (Eq. 6).
func FIC(r *Rates, s *Strategy, m FailureModel) float64 { return core.FIC(r, s, m) }

// Cost returns the execution cost of a strategy in CPU cycles over the
// billing period (Eq. 13).
func Cost(r *Rates, s *Strategy) float64 { return core.Cost(r, s) }

// HostLoads returns the per-host CPU demand of a strategy in one input
// configuration (left side of Eq. 11).
func HostLoads(r *Rates, s *Strategy, asg *Assignment, cfg int) []float64 {
	return core.HostLoads(r, s, asg, cfg)
}

// Overloaded reports whether any host reaches capacity in any configuration
// under the strategy.
func Overloaded(r *Rates, s *Strategy, asg *Assignment) (host, cfg int, overloaded bool) {
	return core.Overloaded(r, s, asg)
}

// Placement.

// PlaceLPT computes a longest-processing-time replica placement with
// anti-affinity.
func PlaceLPT(r *Rates, k, numHosts int) (*Assignment, error) {
	return placement.LPT(r, k, numHosts)
}

// PlaceRoundRobin computes the naive round-robin placement baseline.
func PlaceRoundRobin(numPEs, k, numHosts int) (*Assignment, error) {
	return placement.RoundRobin(numPEs, k, numHosts)
}

// DomainPlacement is a placement that satisfies anti-affinity at some
// fault-domain level, reporting the strictest level achieved.
type DomainPlacement = placement.DomainPlacement

// PlacementUnsatisfiableError explains why no placement satisfies the
// domain anti-affinity constraint (detectable via errors.As).
type PlacementUnsatisfiableError = placement.UnsatisfiableError

// PlaceLPTDomains computes an LPT placement with domain-aware
// anti-affinity: replicas of a PE land in distinct zones when possible,
// falling back to distinct racks, then distinct hosts.
func PlaceLPTDomains(r *Rates, k int, dom *DomainMap) (*DomainPlacement, error) {
	return placement.LPTDomains(r, k, dom)
}

// PlaceRoundRobinDomains computes the round-robin baseline with the same
// domain-aware anti-affinity fallback as PlaceLPTDomains.
func PlaceRoundRobinDomains(numPEs, k int, dom *DomainMap) (*DomainPlacement, error) {
	return placement.RoundRobinDomains(numPEs, k, dom)
}

// RefinePlacement re-places replicas to balance the expected active load of
// a solved strategy (the placement ↔ activation interaction of the paper's
// future work).
func RefinePlacement(r *Rates, s *Strategy, numHosts int) (*Assignment, error) {
	return placement.Refine(r, s, numHosts)
}

// FT-Search solver (see internal/ftsearch).
type (
	// SolveOptions configures a Solve run: IC constraint, deadline,
	// parallelism, pruning ablations and the penalty model.
	SolveOptions = ftsearch.Options
	// SolveResult reports outcome, strategy, cost, IC, first-solution and
	// pruning statistics.
	SolveResult = ftsearch.Result
	// Outcome classifies a solver termination (BST/SOL/NUL/TMO).
	Outcome = ftsearch.Outcome
	// SolveStats carries node and pruning counters.
	SolveStats = ftsearch.Stats
	// PruningStrategy identifies one of the four pruning rules.
	PruningStrategy = ftsearch.Pruning
	// CheckpointOptions enables the hybrid FT decision space: Solve may
	// assign each (configuration, PE) pair passive checkpointing instead of
	// active replication or nothing, reporting the choice in SolveResult.FT.
	CheckpointOptions = ftsearch.CheckpointOptions
)

// Solver outcomes.
const (
	Optimal    = ftsearch.Optimal
	Feasible   = ftsearch.Feasible
	Infeasible = ftsearch.Infeasible
	Timeout    = ftsearch.Timeout
)

// Pruning strategies.
const (
	PruneCPU  = ftsearch.PruneCPU
	PruneIC   = ftsearch.PruneIC
	PruneCost = ftsearch.PruneCost
	PruneDOM  = ftsearch.PruneDOM
)

// Solve runs FT-Search and returns a minimum-cost activation strategy
// satisfying the options' IC constraint on the given deployment.
func Solve(r *Rates, asg *Assignment, opts SolveOptions) (*SolveResult, error) {
	return ftsearch.Solve(r, asg, opts)
}

// Incremental FT-Search (see internal/ftsearch.Solver).
type (
	// Solver is the retained incremental form of FT-Search: incumbent,
	// caches and scratch arenas survive across calls, so a rate shift
	// re-solves warm — same outcome and optimal cost as a cold solve,
	// orders of magnitude fewer explored nodes.
	Solver = ftsearch.Solver
	// SolverConfig configures an incremental Solver: the base solve
	// options plus the per-Resolve anytime budget.
	SolverConfig = ftsearch.SolverConfig
	// Shift is one rate shift handed to Solver.Resolve: configuration Cfg
	// moves to Scale times its nominal source rates (absolute, not
	// cumulative).
	Shift = ftsearch.Shift
)

// NewSolver builds an incremental solver over the instance defined by the
// rates and the replicated assignment.
func NewSolver(r *Rates, asg *Assignment, cfg SolverConfig) (*Solver, error) {
	return ftsearch.NewSolver(r, asg, cfg)
}

// Baseline strategies.

// StaticStrategy returns the static active replication variant (SR).
func StaticStrategy(d *Descriptor, k int) *Strategy { return strategy.Static(d, k) }

// NonReplicatedStrategy derives the NR variant from a base strategy's High
// activations.
func NonReplicatedStrategy(base *Strategy, highCfg int) *Strategy {
	return strategy.NonReplicated(base, highCfg)
}

// GreedyStrategy computes the GRD variant: deactivate the most CPU-hungry
// replicas on overloaded hosts until every configuration fits.
func GreedyStrategy(r *Rates, asg *Assignment) (*Strategy, error) {
	return strategy.Greedy(r, asg)
}

// ICGreedyStrategy builds a feasible (not optimal) strategy meeting the IC
// target for any replication factor — the polynomial-time companion to the
// exact k=2 FT-Search solver, usable on instances beyond exhaustive search.
func ICGreedyStrategy(r *Rates, asg *Assignment, icMin float64) (*Strategy, error) {
	return strategy.ICGreedy(r, asg, icMin)
}

// Input traces (see internal/trace).
type (
	// Trace is a piecewise-constant schedule of input configurations.
	Trace = trace.Trace
	// TraceSegment is one interval of a Trace.
	TraceSegment = trace.Segment
)

// NewTrace builds a trace from contiguous segments.
func NewTrace(segments []TraceSegment) (*Trace, error) { return trace.New(segments) }

// AlternatingTrace actives highCfg for highFrac of every period.
func AlternatingTrace(duration, period, highFrac float64, lowCfg, highCfg int) (*Trace, error) {
	return trace.Alternating(duration, period, highFrac, lowCfg, highCfg)
}

// RandomTrace draws configuration segments with exponentially distributed
// lengths (mean meanSegment seconds) whose time shares converge to probs;
// equal seeds give equal traces.
func RandomTrace(duration, meanSegment float64, probs []float64, seed int64) (*Trace, error) {
	return trace.Random(duration, meanSegment, probs, rand.New(rand.NewSource(seed)))
}

// BinRates discretises continuous rate samples into representative rates
// with probabilities (the binning step of Section 3).
func BinRates(samples []float64, bins int) (rates, probs []float64, err error) {
	return trace.Bin(samples, bins)
}

// Simulated DSPS (see internal/engine).
type (
	// SimConfig holds simulation parameters (tick, queue sizing, monitor
	// interval, glitch noise).
	SimConfig = engine.Config
	// Simulation is one configured experiment run.
	Simulation = engine.Simulation
	// Metrics aggregates everything a run measures.
	Metrics = engine.Metrics
	// MetricsSample is one point of the per-second time series.
	MetricsSample = engine.Sample
	// FailureEvent is one failure-plan entry.
	FailureEvent = engine.FailureEvent
	// FailureKind enumerates injectable failures.
	FailureKind = engine.FailureKind
)

// Failure kinds.
const (
	ReplicaDown       = engine.ReplicaDown
	ReplicaUp         = engine.ReplicaUp
	HostDown          = engine.HostDown
	HostUp            = engine.HostUp
	LinkDown          = engine.LinkDown
	LinkUp            = engine.LinkUp
	HostSlow          = engine.HostSlow
	HostNormal        = engine.HostNormal
	ControllerCrash   = engine.ControllerCrash
	ControllerRecover = engine.ControllerRecover
	DomainCrash       = engine.DomainCrash
	DomainRecover     = engine.DomainRecover
)

// CtrlHost addresses the controller/outside-world endpoint in link events.
const CtrlHost = engine.CtrlHost

// NewSimulation builds a simulated deployment of the application under the
// given placement, activation strategy and input trace.
func NewSimulation(d *Descriptor, asg *Assignment, s *Strategy, tr *Trace, cfg SimConfig) (*Simulation, error) {
	return engine.New(d, asg, s, tr, cfg)
}

// WorstCasePlan builds the pessimistic failure plan: every PE keeps only an
// adversarially chosen survivor replica.
func WorstCasePlan(r *Rates, s *Strategy) []FailureEvent {
	return engine.WorstCasePlan(r, s)
}

// HostCrashPlan crashes one host at the given time and recovers it after
// the downtime. numHosts is the deployment size the plan targets.
func HostCrashPlan(numHosts, host int, at, downtime float64) ([]FailureEvent, error) {
	return engine.HostCrashPlan(numHosts, host, at, downtime)
}

// PartitionPlan cuts the link between two endpoints (hostB may be CtrlHost)
// for the given duration.
func PartitionPlan(numHosts, hostA, hostB int, at, duration float64) ([]FailureEvent, error) {
	return engine.PartitionPlan(numHosts, hostA, hostB, at, duration)
}

// CorrelatedCrashPlan crashes a staggered burst of hosts, each recovering
// downtime seconds after its own crash.
func CorrelatedCrashPlan(numHosts int, hosts []int, at, stagger, downtime float64) ([]FailureEvent, error) {
	return engine.CorrelatedCrashPlan(numHosts, hosts, at, stagger, downtime)
}

// DomainCrashPlan crashes every host of one fault domain (a rack or zone)
// at the given time and recovers the domain after the downtime.
func DomainCrashPlan(dom *DomainMap, level DomainLevel, domainIdx int, at, downtime float64) ([]FailureEvent, error) {
	return engine.DomainCrashPlan(dom, level, domainIdx, at, downtime)
}

// GraySlowdownPlan degrades one host to factor of its CPU capacity for the
// given duration.
func GraySlowdownPlan(numHosts, host int, factor, at, duration float64) ([]FailureEvent, error) {
	return engine.GraySlowdownPlan(numHosts, host, factor, at, duration)
}

// ControllerCrashPlan crashes one HAController instance at the given time
// and recovers it after the downtime. numControllers is the control-plane
// size the plan targets (SimConfig.Controllers).
func ControllerCrashPlan(numControllers, idx int, at, downtime float64) ([]FailureEvent, error) {
	return engine.ControllerCrashPlan(numControllers, idx, at, downtime)
}

// Synthetic workloads (see internal/appgen).
type (
	// GenParams configures the synthetic application generator.
	GenParams = appgen.Params
	// GeneratedApp bundles a generated descriptor, rates and placement.
	GeneratedApp = appgen.Generated
)

// GenerateApp builds one synthetic application with the paper's corpus
// characteristics (Section 5.2).
func GenerateApp(p GenParams) (*GeneratedApp, error) { return appgen.Generate(p) }

// Live goroutine runtime (see internal/live).
type (
	// LiveRuntime executes real operators on goroutines with LAAR's
	// middleware: per-replica proxies, heartbeats, primary election, a
	// rate monitor and the HAController.
	LiveRuntime = live.Runtime
	// LiveConfig holds live-runtime parameters.
	LiveConfig = live.Config
	// Tuple is one data item flowing through the live runtime.
	Tuple = live.Tuple
	// Operator transforms input tuples into output tuples.
	Operator = live.Operator
	// OperatorFunc adapts a function to the Operator interface.
	OperatorFunc = live.OperatorFunc
	// StatefulOperator adds snapshot/restore so a replica joining the
	// active set re-synchronises from the primary (Section 4.6).
	StatefulOperator = live.StatefulOperator
	// LiveStats summarises a live run.
	LiveStats = live.Stats
	// LiveDriver pushes synthetic trace-driven tuples into a LiveRuntime.
	LiveDriver = live.Driver
	// LiveTransport models the network between replica hosts and the
	// controller side; inject via LiveConfig.Transport.
	LiveTransport = live.Transport
	// NetFault is a mutable LiveTransport for fault injection: cut/heal
	// links, message loss, heartbeat delay.
	NetFault = live.NetFault
	// ReplicaStat is one replica's supervision snapshot from
	// LiveRuntime.Stats.
	ReplicaStat = live.ReplicaStat
	// LiveControllerStat is one replicated HAController instance's snapshot
	// from LiveRuntime.ControllerStats.
	LiveControllerStat = live.ControllerStat
	// LiveLeaseGrant is one entry of the control plane's lease history.
	LiveLeaseGrant = live.LeaseGrant
)

// LiveControllerHost addresses the controller side in LiveTransport queries
// and NetFault operations.
const LiveControllerHost = live.ControllerHost

// LiveControllerEndpoint returns the transport endpoint of replicated
// HAController instance i (instance 0 sits at LiveControllerHost).
func LiveControllerEndpoint(i int) int { return live.ControllerEndpoint(i) }

// NewNetFault returns a fault-free injectable transport whose loss
// decisions are driven by the seed.
func NewNetFault(seed int64) *NetFault { return live.NewNetFault(seed) }

// NewLiveDriver builds a trace-driven source feeder for a live runtime,
// replaying the trace at the given wall-clock compression scale.
func NewLiveDriver(rt *LiveRuntime, d *Descriptor, tr *Trace, scale float64) (*LiveDriver, error) {
	return live.NewDriver(rt, d, tr, scale)
}

// Operator library (see internal/ops): reusable transforms and stateful
// windowed aggregates for the live runtime.

// OperatorFactory builds one operator instance per (PE, replica).
type OperatorFactory = ops.Factory

// OpMap applies fn to every payload, emitting exactly one output.
func OpMap(fn func(any) any) OperatorFactory { return ops.Map(fn) }

// OpFilter keeps payloads satisfying pred.
func OpFilter(pred func(any) bool) OperatorFactory { return ops.Filter(pred) }

// OpFlatMap applies fn to every payload, emitting all returned outputs.
func OpFlatMap(fn func(any) []any) OperatorFactory { return ops.FlatMap(fn) }

// OpCountWindow emits reduce(window) for every n consecutive payloads; the
// partial window is replica state and re-synchronises per Section 4.6.
func OpCountWindow(n int, reduce func(window []any) any) OperatorFactory {
	return ops.CountWindow(n, reduce)
}

// OpRunningReduce folds payloads into an accumulator, emitting fn's second
// return when non-nil; the accumulator re-synchronises per Section 4.6.
func OpRunningReduce(initial any, fn func(acc, in any) (newAcc, emit any)) OperatorFactory {
	return ops.RunningReduce(initial, fn)
}

// OpsPerPE dispatches factories by PE name with a default (identity when
// nil), wiring a whole application graph in one expression.
func OpsPerPE(app *App, factories map[string]OperatorFactory, def OperatorFactory) OperatorFactory {
	return ops.PerPE(app, factories, def)
}

// NewLiveRuntime builds a live runtime executing the application's PEs with
// operators produced by the factory (one operator instance per replica).
func NewLiveRuntime(d *Descriptor, asg *Assignment, s *Strategy, factory func(pe ComponentID, replica int) Operator, cfg LiveConfig) (*LiveRuntime, error) {
	return live.New(d, asg, s, factory, cfg)
}

// Profiling (see internal/profile): the preliminary profiling step of
// Section 3 that extracts descriptor attributes from an instrumented run.
type (
	// Profiler collects per-edge selectivity/cost observations and
	// source-rate samples, and synthesises a Descriptor.
	Profiler = profile.Profiler
	// ProfileOptions configures descriptor synthesis.
	ProfileOptions = profile.Options
)

// NewProfiler returns a profiler for the application, converting measured
// CPU time to cycles at the given clock rate.
func NewProfiler(app *App, cpuHz float64) (*Profiler, error) { return profile.New(app, cpuHz) }

// LAAR-SPL, the textual application language (see internal/spl), mirrors
// the role SPL plays for InfoSphere Streams in Section 5.1.

// ParseSPL parses LAAR-SPL source text into a validated descriptor.
func ParseSPL(src string) (*Descriptor, error) { return spl.Parse(src) }

// LoadDescriptorFile reads an application descriptor from disk, accepting
// either the JSON format (MarshalDescriptor) or LAAR-SPL text; the format
// is sniffed from the content.
func LoadDescriptorFile(path string) (*Descriptor, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "{") {
		return core.UnmarshalDescriptor(data)
	}
	return spl.Parse(trimmed)
}

// FormatSPL renders a descriptor as LAAR-SPL text; ParseSPL(FormatSPL(d))
// is semantically equivalent to d.
func FormatSPL(d *Descriptor) string { return spl.Format(d) }

// Operator fusion (see internal/fusion), the Streams compilation step of
// Section 5.1 that merges operator chains into single PEs.
type (
	// FuseOptions bounds the fusion pass.
	FuseOptions = fusion.Options
	// FuseResult reports the fused descriptor and the merge mapping.
	FuseResult = fusion.Result
)

// Fuse merges fusable linear operator chains of the descriptor's
// application into single PEs, preserving rates and total load.
func Fuse(d *Descriptor, opts FuseOptions) (*FuseResult, error) { return fusion.Fuse(d, opts) }

// Alternative fault-tolerance metrics (Section 4.3 discusses why IC is
// preferred over these).

// OutputCompleteness measures expected sink deliveries under failures
// relative to the failure-free deliveries.
func OutputCompleteness(r *Rates, s *Strategy, m FailureModel) float64 {
	return core.OutputCompleteness(r, s, m)
}

// AvgReplicationFactor returns the probability-weighted mean number of
// active replicas per PE.
func AvgReplicationFactor(d *Descriptor, s *Strategy) float64 {
	return core.AvgReplicationFactor(d, s)
}

// Latency estimation (the maximum-latency SLA clause of Section 3).

// StageLatency estimates the per-tuple latency of every PE in a
// configuration under a processor-sharing host model.
func StageLatency(r *Rates, s *Strategy, asg *Assignment, cfg int) []float64 {
	return core.StageLatency(r, s, asg, cfg)
}

// PathLatency estimates the worst source-to-sink latency in a
// configuration.
func PathLatency(r *Rates, s *Strategy, asg *Assignment, cfg int) float64 {
	return core.PathLatency(r, s, asg, cfg)
}

// MaxLatency estimates the worst end-to-end latency across all input
// configurations; +Inf indicates an overloaded configuration.
func MaxLatency(r *Rates, s *Strategy, asg *Assignment) float64 {
	return core.MaxLatency(r, s, asg)
}

// Deterministic clocks for the live runtime (see internal/live). Injecting
// a FakeClock through LiveConfig.Clock makes heartbeat, election and
// monitor timing a pure function of Advance calls, so failure-injection
// tests run deterministically and in milliseconds of wall time.
type (
	// LiveClock abstracts the live runtime's time source.
	LiveClock = live.Clock
	// LiveTicker is the clock-agnostic counterpart of time.Ticker.
	LiveTicker = live.Ticker
	// FakeClock is a manually advanced LiveClock.
	FakeClock = live.FakeClock
)

// NewFakeClock returns a fake clock starting at the given origin.
func NewFakeClock(origin time.Time) *FakeClock { return live.NewFakeClock(origin) }

// PastEventError reports a failure event injected behind the simulation
// clock (detectable via errors.As on Simulation.Inject's error).
type PastEventError = engine.PastEventError

// Chaos harness (see internal/chaos): seeded fault-schedule generation,
// LAAR invariant checking, and engine ↔ live differential testing.
type (
	// ChaosScenario is the compact seeded spec a chaos run is generated
	// from; equal scenarios produce equal runs.
	ChaosScenario = chaos.Scenario
	// ChaosClass selects a failure-schedule family.
	ChaosClass = chaos.Class
	// ChaosResult bundles one engine chaos run for invariant checking.
	ChaosResult = chaos.Result
	// ChaosSchedule is one concrete failure plan plus input trace.
	ChaosSchedule = chaos.Schedule
	// ChaosInvariant is one checkable property of a chaos run.
	ChaosInvariant = chaos.Invariant
	// ChaosViolation is one invariant breach.
	ChaosViolation = chaos.Violation
	// ChaosSweepRun is the outcome of one scenario within a parallel
	// chaos sweep.
	ChaosSweepRun = chaos.SweepRun
	// ChaosDiffResult compares one scenario run on the engine and on the
	// live runtime.
	ChaosDiffResult = chaos.DiffResult
	// ChaosSupervisedResult is the outcome of one supervised-recovery run.
	ChaosSupervisedResult = chaos.SupervisedResult
	// ChaosControllerResult is the outcome of one control-plane chaos run.
	ChaosControllerResult = chaos.ControllerResult
	// ChaosModelResult is the outcome of one direct model check of the
	// control-plane machines.
	ChaosModelResult = chaos.ModelResult
	// ChaosCtrlCut is one controller↔controller link transition of a
	// control-plane schedule.
	ChaosCtrlCut = chaos.CtrlCut
	// ChaosMode selects what SweepChaos does with each scenario.
	ChaosMode = chaos.Mode
)

// Chaos schedule classes.
const (
	ChaosHostCrash         = chaos.HostCrash
	ChaosCorrelatedCrash   = chaos.CorrelatedCrash
	ChaosReplicaChurn      = chaos.ReplicaChurn
	ChaosLoadSpike         = chaos.LoadSpike
	ChaosGlitchBurst       = chaos.GlitchBurst
	ChaosMixed             = chaos.Mixed
	ChaosPartition         = chaos.Partition
	ChaosGraySlow          = chaos.GraySlow
	ChaosCtrlCrash         = chaos.CtrlCrash
	ChaosCtrlPartition     = chaos.CtrlPartition
	ChaosCtrlSpike         = chaos.CtrlSpike
	ChaosDomainCrash       = chaos.DomainCrash
	ChaosCheckpointRestore = chaos.CheckpointRestore
)

// Chaos sweep modes.
const (
	ChaosModeInvariants = chaos.ModeInvariants
	ChaosModeDiff       = chaos.ModeDiff
	ChaosModeSupervised = chaos.ModeSupervised
	ChaosModeController = chaos.ModeController
	ChaosModeModel      = chaos.ModeModel
)

// RunChaos executes one seeded chaos scenario on the discrete-event engine
// and checks every registry invariant, returning the run and the
// violations (empty when clean).
func RunChaos(sc ChaosScenario) (*ChaosResult, []ChaosViolation, error) {
	return chaos.RunAndCheck(sc)
}

// DiffChaos runs one scenario differentially on the engine and the live
// runtime and reports sink-count agreement.
func DiffChaos(sc ChaosScenario) (*ChaosDiffResult, error) { return chaos.Diff(sc) }

// SupervisedChaos replays one scenario's faults against the supervised
// live runtime — withholding scheduled recoveries — and checks that the
// supervisor alone restores full replication without split-brain.
func SupervisedChaos(sc ChaosScenario) (*ChaosSupervisedResult, error) { return chaos.Supervised(sc) }

// ControllerChaos replays one scenario's control-plane faults — leader
// crashes, blackouts and controller↔controller partitions — against the
// live runtime's replicated control plane and checks the control-plane
// invariants (unique lease epochs, command convergence, fail-safe
// reversion).
func ControllerChaos(sc ChaosScenario) (*ChaosControllerResult, error) { return chaos.Controller(sc) }

// ModelChaos replays one scenario's control-plane faults directly against
// the extracted controlplane machines — electors, sequencers, monitors,
// replica proxies and the fail-safe tracker stepped by a pure loop with no
// engine, goroutines or clock — and checks the same control-plane
// invariants as ControllerChaos.
func ModelChaos(sc ChaosScenario) (*ChaosModelResult, error) { return chaos.Model(sc) }

// SweepChaos executes the scenarios across a bounded worker pool (≤ 0 =
// all CPUs) in the given mode and returns the outcomes in input order.
// ChaosModeInvariants runs are pure functions of their scenarios, so their
// outcomes are deeply equal for every parallelism setting.
func SweepChaos(scs []ChaosScenario, parallelism int, mode ChaosMode) []ChaosSweepRun {
	return chaos.Sweep(scs, parallelism, mode)
}

// ChaosInvariants returns the invariant registry checked after chaos runs.
func ChaosInvariants() []ChaosInvariant { return chaos.Registry() }

// ChaosClasses lists every chaos schedule class.
func ChaosClasses() []ChaosClass { return chaos.Classes() }

// ParseChaosClass resolves a schedule-class name ("host-crash", "mixed", ...).
func ParseChaosClass(name string) (ChaosClass, error) { return chaos.ParseClass(name) }

// Exhaustive model checking (see internal/mcheck): bounded exhaustive
// exploration of the control-plane kernel with canonical-state pruning,
// counterexample shrinking, and replayable repro artifacts.
type (
	// MCheckOptions sizes the explored control-plane world.
	MCheckOptions = mcheck.Options
	// MCheckResult is the outcome of one bounded exhaustive exploration.
	MCheckResult = mcheck.Result
	// MCheckCounterexample is a violating event schedule.
	MCheckCounterexample = mcheck.Counterexample
	// MCheckEvent is one transition of the explored world.
	MCheckEvent = mcheck.Event
	// MCheckFault selects a deliberate kernel bug to inject.
	MCheckFault = mcheck.Fault
	// MCheckRepro is a replayable violation artifact.
	MCheckRepro = mcheck.Repro
)

// Injectable kernel faults.
const (
	MCheckFaultNone              = mcheck.FaultNone
	MCheckFaultCrashKeepsPending = mcheck.FaultCrashKeepsPending
	MCheckFaultClaimAdoptsSeen   = mcheck.FaultClaimAdoptsSeen
)

// DefaultMCheckOptions returns the default small-scope exploration shape.
func DefaultMCheckOptions() MCheckOptions { return mcheck.DefaultOptions() }

// ExhaustiveCheck explores every interleaving of control-plane events up
// to the depth bound, checking the per-state invariant registry at every
// reachable state, with visited-state pruning on canonical fingerprints.
func ExhaustiveCheck(opt MCheckOptions) (*MCheckResult, error) { return mcheck.Explore(opt) }

// ReplayMCheck replays an event schedule and returns the violations of the
// first violating state, with the index of the violating event.
func ReplayMCheck(opt MCheckOptions, events []MCheckEvent) ([]ChaosViolation, int, error) {
	return mcheck.Replay(opt, events)
}

// ShrinkMCheck minimises a counterexample to a 1-minimal event schedule
// over a minimised world (fewer instances, smaller replica shape, lower
// timing constants) that still replays to the same invariant violation.
func ShrinkMCheck(opt MCheckOptions, events []MCheckEvent, invariant string) (MCheckOptions, []MCheckEvent) {
	return mcheck.Shrink(opt, events, invariant)
}

// ShrinkModelChaos minimises a failing chaos-model schedule while
// preserving its failure signature, returning the shrunk schedule and its
// replay outcome.
func ShrinkModelChaos(sc ChaosScenario, sched *ChaosSchedule) (*ChaosSchedule, *ChaosModelResult, error) {
	return mcheck.ShrinkModel(sc, sched)
}

// ReplayModelChaos replays a provided schedule (typically loaded from a
// repro artifact) against the control-plane model instead of regenerating
// it from the scenario seed.
func ReplayModelChaos(sc ChaosScenario, sched *ChaosSchedule) (*ChaosModelResult, error) {
	return chaos.ModelReplay(sc, sched)
}

// SaveMCheckRepro writes a replayable violation artifact as JSON.
func SaveMCheckRepro(path string, r *MCheckRepro) error { return mcheck.SaveRepro(path, r) }

// LoadMCheckRepro reads and validates a violation artifact.
func LoadMCheckRepro(path string) (*MCheckRepro, error) { return mcheck.LoadRepro(path) }

// ReplayMCheckRepro replays an artifact and reports the reproduced
// violation, or an error when it no longer reproduces.
func ReplayMCheckRepro(r *MCheckRepro) (string, error) { return mcheck.ReplayRepro(r) }

// MCheckReproFromCounterexample wraps an explorer counterexample as an
// artifact; MCheckReproFromModel wraps a failing model schedule.
func MCheckReproFromCounterexample(c *MCheckCounterexample) *MCheckRepro {
	return mcheck.ReproFromCounterexample(c)
}

// MCheckReproFromModel wraps a failing model schedule as an artifact.
func MCheckReproFromModel(sc ChaosScenario, sched *ChaosSchedule, detail string) *MCheckRepro {
	return mcheck.ReproFromModel(sc, sched, detail)
}

// ParseMCheckFault resolves an injectable fault name ("none",
// "crash-keeps-pending", "claim-adopts-seen").
func ParseMCheckFault(name string) (MCheckFault, error) { return mcheck.ParseFault(name) }
